"""Trace-replay benchmarking: policy grids, reports, and the regression gate.

The paper justifies its kernels with an exhaustive sweep analysed
post-hoc; this module gives the serving layer the same discipline.  One
recorded trace (:mod:`repro.serve.trace`) is replayed across a grid of
``ServePolicy`` × backend cells; every cell's :class:`ServeMetrics` and
:mod:`repro.obs` per-stage latencies land in one JSON report
(``BENCH_serve_replay.json``) stamped with an environment fingerprint;
and :func:`compare_reports` gates a fresh report against a committed
baseline with explicit noise tolerances — ``python -m repro replay-check``
exits nonzero on regression, which is what CI runs nightly.

Every run entry carries the service's conservation check
(``submitted == completed + failed + shed``): a replay whose backend died
mid-flight shows up as a *failed, gated* run — never as a hang or a
silently rosy number.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, replace

from repro.obs import InMemorySink, Tracer, set_tracer, span_to_dict, stage_summary
from repro.obs.slo import evaluate_objectives, parse_objectives
from repro.serve.admission import jain_index
from repro.serve.client import replay_trace
from repro.serve.control.journal import verify_journal
from repro.serve.policy import ServePolicy
from repro.serve.trace import RecordedTrace, normalize_events, trace_sha256

#: Schema tag of the replay report; bump on breaking layout changes.
#: v2 added the shard dimension (``policy.shards``/``policy.placement``,
#: per-run ``shards``/``placement``/``per_shard``); the controlled
#: dimension (``controller`` blocks, ``coalesce_p99_ms``) and the graph
#: dimension (``offered``, ``graph`` blocks, ``/graph`` cells) are
#: additive within v2.  v3 adds the sketch-derived tail quantiles
#: (``coalesce_p999_ms``, ``service_p99_ms`` — now exact mergeable
#: sketch percentiles, see :mod:`repro.obs.sketch`) and the per-run
#: ``slo`` block the ``replay-check --slo`` gate reads
#: (:func:`~repro.obs.slo.evaluate_objectives`).  Every added field is
#: additive, so older reports remain readable.  The per-run ``tiers``
#: block (admission policy, per-tier counters/tails, per-tenant
#: attribution, Jain's fairness, hedge counters — the ``replay-check
#: --tiers`` gate's input) is additive within v3: untiered runs carry
#: ``tiers: null`` and older v3 baselines stay valid.  v4 adds the
#: zero-copy data-plane dimension: ``/arena`` grid cells replay through
#: the shared-memory staging backend (:mod:`repro.serve.arena`) and every
#: run carries an ``arena`` block (slot conservation, staged vs
#: fallback-copied bytes) — ``None`` when staging never engaged — which
#: the ``replay-check --arena`` gate reads.
REPORT_SCHEMA = "repro.bench_serve_replay/v4"

#: Schemas :func:`load_report` accepts.  Older baselines gate newer
#: reports — the comparison matches runs by label and older labels are a
#: subset.
SUPPORTED_SCHEMAS = (
    "repro.bench_serve_replay/v1",
    "repro.bench_serve_replay/v2",
    "repro.bench_serve_replay/v3",
    REPORT_SCHEMA,
)


# ----------------------------------------------------------------------
# Policy grids
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One cell of the replay grid: a label and the policy it names.

    ``controller`` names a control strategy to run the cell under
    (``None`` replays the static policy, the classic cell); controlled
    cells still *start* from the cell's policy — the controller then
    adapts the hot knobs online.  ``graph`` honours the trace's v2 graph
    annotations through the :class:`~repro.serve.graph.GraphScheduler`
    instead of replaying every event independently.  ``tiers`` attaches
    an :class:`~repro.serve.admission.AdmissionController` (``"1"`` for
    the default policy, or a :meth:`TierPolicy.parse` spec string);
    ``None`` replays untiered *regardless* of ``$REPRO_SERVE_TIERS`` so
    grid cells stay deterministic under the CI env matrix.  ``arena``
    marks a zero-copy data-plane cell: its policy's backend is already
    rewritten to ``arena-process`` by :func:`policy_grid`, and the flag
    lets :func:`compare_arena` pair the cell with its pickle sibling.
    """

    label: str
    policy: ServePolicy
    controller: str | None = None
    controller_interval_ms: float = 10.0
    graph: bool = False
    tiers: str | None = None
    arena: bool = False


def policy_grid(
    backends=("inline",),
    target_batches=(64,),
    max_delays_ms=(2.0,),
    shards=(1,),
    placements=("size",),
    controllers=(None,),
    graphs=(False,),
    tiers=(None,),
    arenas=(False,),
    base: ServePolicy | None = None,
) -> list[GridCell]:
    """The cross product of backends × batch targets × deadlines × shards.

    Labels are stable (``inline/tb64/d2ms``) so baseline and current
    reports match runs by name even when the grid is re-ordered.  The
    shard dimension only *suffixes* the label (``inline/tb64/d2ms/sh4-size``)
    when a cell runs more than one shard, so single-shard labels — and the
    committed v1 baselines that name them — stay byte-identical.  With
    ``shards != 1`` the placement dimension fans out too; at one shard the
    placement is irrelevant and only a single cell is emitted.

    ``controllers`` adds the controlled dimension: each non-``None``
    entry is a strategy name and suffixes the label again
    (``.../ctl-aimd``).  Because :func:`compare_reports` ignores current
    runs absent from the baseline, controlled cells ride along without
    touching committed baselines; :func:`compare_controlled` gates them
    against their static siblings *within* the fresh report instead,
    which also cancels machine-speed differences.

    ``graphs`` adds the dependency-aware dimension: a ``True`` entry
    suffixes ``/graph`` and replays the trace through the
    :class:`~repro.serve.graph.GraphScheduler`, honouring its v2 graph
    annotations.  Like the controlled dimension it is purely additive —
    dep-free cells and their labels are untouched.

    ``tiers`` adds the admission dimension: each non-``None`` entry is a
    tiers spec (``"1"`` for defaults, or a :meth:`TierPolicy.parse`
    string) and suffixes the label with ``/tiers``.  Tiered cells carry
    the per-tier ``tiers`` block :func:`compare_tiers` gates; untiered
    cells and their labels stay byte-identical, so the v1/v2/v3
    committed baselines keep matching.

    ``arenas`` adds the zero-copy data-plane dimension: a ``True`` entry
    suffixes ``/arena`` and rewrites the cell's backend to
    ``arena-process`` — the shared-memory staging backend of
    :mod:`repro.serve.arena` — while keeping the *original* backend name
    in the label prefix.  An arena cell therefore pairs exactly with the
    pickle sibling produced by the same cross-product row
    (``process/tb64/d2ms`` ↔ ``process/tb64/d2ms/arena``), which is what
    :func:`compare_arena` exploits to gate the bytes-copied reduction
    within one report.  Like every other added dimension it is purely
    additive: ``arenas=(False,)`` reproduces the old grid byte for byte.
    """
    base = base or ServePolicy(request_timeout_s=None)
    cells = []
    for backend in backends:
        for tb in target_batches:
            for delay_ms in max_delays_ms:
                for shard_count in shards:
                    for placement in placements if shard_count != 1 else (None,):
                        for controller in controllers:
                            for graph in graphs:
                                for tier_spec in tiers:
                                    for arena in arenas:
                                        label = f"{backend}/tb{tb}/d{delay_ms:g}ms"
                                        if shard_count != 1:
                                            label += f"/sh{shard_count}-{placement}"
                                        if controller is not None:
                                            label += f"/ctl-{controller}"
                                        if graph:
                                            label += "/graph"
                                        if tier_spec is not None:
                                            label += "/tiers"
                                        if arena:
                                            label += "/arena"
                                        cells.append(
                                            GridCell(
                                                label=label,
                                                policy=replace(
                                                    base,
                                                    backend=(
                                                        "arena-process"
                                                        if arena
                                                        else backend
                                                    ),
                                                    target_batch=tb,
                                                    max_delay_s=delay_ms / 1e3,
                                                    shards=shard_count,
                                                    placement=placement,
                                                ),
                                                controller=controller,
                                                graph=bool(graph),
                                                tiers=tier_spec,
                                                arena=bool(arena),
                                            )
                                        )
    return cells


# ----------------------------------------------------------------------
# Running one grid
# ----------------------------------------------------------------------


def environment_fingerprint() -> dict:
    """Where a report was produced — enough to judge comparability."""
    import numpy
    import scipy

    import repro

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": repro.__version__,
    }


def _policy_dict(policy: ServePolicy) -> dict:
    return {
        "backend": policy.backend or "inline",
        "target_batch": policy.target_batch,
        "max_delay_ms": policy.max_delay_s * 1e3,
        "max_queue_depth": policy.max_queue_depth,
        "snap_to_chunk": policy.snap_to_chunk,
        "shards": policy.shard_count(),
        "placement": policy.placement_name(),
    }


def run_record(
    label: str, summary, policy: ServePolicy, stages=None, slo_objectives=None
) -> dict:
    """One report entry from a completed :class:`ReplaySummary`.

    ``slo_objectives`` (parsed :class:`~repro.obs.slo.SloObjective`
    tuple) adds the whole-run ``slo`` block: exact sketch-derived bad
    fractions and burn rates per objective, plus the aggregate ``ok``
    verdict the ``replay-check --slo`` gate reads.
    """
    m = summary.metrics
    coalesce = m.histograms["coalesce_latency_ms"]
    service = m.histograms["flush_service_ms"]
    requests = summary.requests
    return {
        "label": label,
        "ok": True,
        "policy": _policy_dict(policy),
        "backend": summary.backend,
        "requests": requests,
        # Offered load as the broker saw it (the ``submitted`` counter,
        # bumped before the shed check) — together with ``shed`` this
        # stops a cell "winning" a throughput or fill comparison by
        # shedding the work it was offered.
        "offered": m.counters["submitted"],
        "completed": summary.completed,
        "failed": summary.failed,
        "shed": summary.shed,
        "failure_rate": summary.failed / requests if requests else 0.0,
        "shed_rate": summary.shed / requests if requests else 0.0,
        "conservation_ok": m.unaccounted == 0,
        "elapsed_s": summary.elapsed_s,
        "throughput_rps": summary.throughput_rps,
        "coalesce_p50_ms": coalesce.percentile(50),
        "coalesce_p95_ms": coalesce.percentile(95),
        "coalesce_p99_ms": coalesce.percentile(99),
        "coalesce_p999_ms": coalesce.percentile(99.9),
        "service_p95_ms": service.percentile(95),
        "service_p99_ms": service.percentile(99),
        "batch_mean": m.histograms["batch_size"].mean,
        "fill_mean": m.histograms["batch_fill"].mean,
        "gflops_mean": m.histograms["flush_gflops"].mean,
        "shards": getattr(summary, "shards", 1),
        "placement": getattr(summary, "placement", None),
        "per_shard": {
            str(shard): pm.as_dict() for shard, pm in sorted(summary.per_shard.items())
        }
        if getattr(summary, "per_shard", None)
        else None,
        "metrics": m.as_dict(),
        "stages": stages or {},
        "controller": _controller_dict(summary),
        "graph": _graph_dict(summary),
        "tiers": _tiers_dict(summary),
        "arena": _arena_dict(summary),
        "slo": _slo_dict(m, slo_objectives),
        "slo_monitor": getattr(summary, "slo", None),
    }


def _slo_dict(metrics, objectives) -> dict | None:
    """The run record's slo block (``None`` when no objectives given)."""
    if not objectives:
        return None
    results = evaluate_objectives(metrics, objectives)
    return {
        "objectives": [o.name for o in objectives],
        "ok": all(r.get("ok", False) for r in results),
        "results": results,
    }


def _graph_dict(summary) -> dict | None:
    """The run record's graph block (``None`` for flat replays).

    Summarizes the scheduler's :class:`~repro.serve.graph.GraphMetrics`:
    node accounting (with its own conservation verdict), wave shape, and
    the critical-path latency distribution the ``/graph`` gate reads.
    """
    gm = getattr(summary, "graph_metrics", None)
    if gm is None:
        return None
    c = gm.counters
    critical = gm.histograms["graph_critical_path_ms"]
    return {
        "graphs": c["graphs"],
        "graphs_ok": c["graphs_ok"],
        "nodes": c["nodes"],
        "nodes_completed": c["nodes_completed"],
        "nodes_failed": c["nodes_failed"],
        "nodes_dep_failed": c["nodes_dep_failed"],
        "nodes_shed": c["nodes_shed"],
        "waves": c["waves"],
        "conservation_ok": gm.unaccounted == 0,
        "wave_width_mean": gm.histograms["wave_width"].mean,
        "graph_depth_mean": gm.histograms["graph_depth"].mean,
        "critical_path_ms_mean": critical.mean,
        "critical_path_ms_max": critical.max,
    }


def _arena_dict(summary) -> dict | None:
    """The run record's arena block (``None`` when staging never engaged).

    Mirrors :meth:`~repro.serve.metrics.ServeMetrics.arena_summary`:
    slot conservation (``slots_staged``/``slots_released``/``leaked``),
    bytes written straight into shared-memory slots (``bytes_staged``),
    bytes the flush path still copied through pickling
    (``bytes_copied_fallback`` — recorded on *every* backend, which is
    what lets :func:`compare_arena` compare an arena cell against its
    pickle sibling within one report), the pool high-water mark, and
    generation bumps from fault recovery.  Flat pickle cells carry the
    block too (their ``bytes_copied_fallback`` is the comparison
    denominator); it is ``None`` only when no flush moved any bytes.
    """
    metrics = summary.metrics
    arena = getattr(metrics, "arena", None)
    if not arena or not any(arena.values()):
        return None
    return metrics.arena_summary()


def _tiers_dict(summary) -> dict | None:
    """The run record's tiers block (``None`` for untiered replays).

    Combines the admission policy the cell ran under (budgets included,
    so the gate is self-describing), the per-tier counter/tail summary,
    per-tenant attribution, Jain's fairness index over per-tenant
    completions, and the fabric's hedge counters.  Everything the
    ``replay-check --tiers`` gate reads lives here.
    """
    admission = getattr(summary, "admission", None)
    if admission is None:
        return None
    tier_summary = summary.metrics.tier_summary()
    completed_by_tenant = tier_summary.get("completed_by_tenant", {})
    return {
        "policy": admission,
        "jain_fairness": jain_index(completed_by_tenant.values()),
        "hedges": getattr(summary, "hedges", None),
        **tier_summary,
    }


def _controller_dict(summary) -> dict | None:
    """The run record's controller block (``None`` for static runs).

    Carries the decision journal verbatim (its JSONL lines) so CI can
    upload it as an artifact straight from the report, plus the
    ``deterministic`` verdict of
    :func:`~repro.serve.control.journal.verify_journal` — the replayed
    strategy must reproduce the recorded knob sequence.
    """
    journal = getattr(summary, "journal", None)
    if journal is None:
        return None
    knobs = journal.final_knobs()
    return {
        "strategy": summary.controller,
        "interval_ms": (journal.interval_s or 0.0) * 1e3,
        "decisions": len(journal),
        "changes": journal.changes,
        "final_target_batch": knobs.target_batch,
        "final_max_delay_ms": knobs.max_delay_ms,
        "final_placement": knobs.placement,
        "deterministic": verify_journal(journal),
        "journal": journal.to_lines(),
    }


def run_replay_cell(
    events, cell: GridCell, warmup: bool = True, slo_objectives=None
) -> dict:
    """Replay one trace through one grid cell, tracing every stage.

    A cell that raises — backend construction failure, replay crash —
    returns an ``ok: false`` entry instead of propagating, so one sick
    cell cannot take down the whole grid (the gate still flags it).
    """
    sink = InMemorySink()
    tracer = Tracer([sink])
    previous = set_tracer(tracer)
    try:
        summary = replay_trace(
            events,
            policy=cell.policy,
            warmup=warmup,
            controller=cell.controller or "off",
            controller_interval_s=cell.controller_interval_ms / 1e3,
            graph=cell.graph,
            # "off" (not None) so an untiered cell ignores the
            # $REPRO_SERVE_TIERS env knob — grid labels must stay
            # deterministic under the CI env matrix.
            tiers=cell.tiers if cell.tiers is not None else "off",
        )
    except Exception as exc:  # noqa: BLE001 - the gate judges failed cells
        return {
            "label": cell.label,
            "ok": False,
            "policy": _policy_dict(cell.policy),
            "error": f"{type(exc).__name__}: {exc}",
        }
    finally:
        set_tracer(previous)
    stages = stage_summary([span_to_dict(s) for s in sink.spans])
    return run_record(
        cell.label, summary, cell.policy, stages=stages,
        slo_objectives=slo_objectives,
    )


def run_replay_grid(
    trace,
    cells: list[GridCell],
    trace_name: str = "",
    trace_path=None,
    warmup: bool = True,
    progress=None,
    slo=None,
) -> dict:
    """Replay one trace across every grid cell and assemble the report.

    ``slo`` (an objective spec string or a parsed objective tuple) adds
    a whole-run ``slo`` block to every cell's record, which
    :func:`compare_slo` gates.
    """
    objectives = parse_objectives(slo) if isinstance(slo, str) else slo
    events = normalize_events(trace)
    if not events:
        raise ValueError("cannot replay an empty trace")
    runs = []
    for cell in cells:
        if progress is not None:
            progress(cell.label)
        runs.append(
            run_replay_cell(
                events, cell, warmup=warmup, slo_objectives=objectives
            )
        )
    trace_info = {
        "name": trace_name
        or (trace.meta.get("name", "") if isinstance(trace, RecordedTrace) else ""),
        "events": len(events),
        "duration_s": events[-1].at,
    }
    if trace_path:
        trace_info["path"] = str(trace_path)
        trace_info["sha256"] = trace_sha256(trace_path)
    return {
        "schema": REPORT_SCHEMA,
        "trace": trace_info,
        "environment": environment_fingerprint(),
        "runs": runs,
    }


def save_report(path, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=False)
        fh.write("\n")


def load_report(path) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema") if isinstance(report, dict) else None
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: expected one of {SUPPORTED_SCHEMAS} reports, "
            f"got schema {schema!r}"
        )
    return report


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GateTolerances:
    """Noise allowances of the regression gate.

    Replays time real wall clocks, so the gate compares against a
    committed baseline with explicit slack instead of demanding
    equality.  The defaults are deliberately tighter than a 20% move:
    a doctored baseline whose throughput is inflated by 20% *must*
    trip the gate.
    """

    #: Fractional throughput loss tolerated (0.15 = current may be up
    #: to 15% below baseline).
    throughput_frac: float = 0.15
    #: Fractional p95 coalesce-latency growth tolerated.
    p95_frac: float = 0.5
    #: Absolute p95 floor (ms) under which latency noise is ignored.
    p95_floor_ms: float = 0.25
    #: Absolute shed-rate growth tolerated.
    shed_abs: float = 0.02
    #: Absolute failure-rate growth tolerated.
    failure_abs: float = 0.02
    #: Absolute mean flush fill-ratio loss tolerated.  The default is
    #: deliberately loose — fill only becomes a meaningful gate on graph
    #: cells, where the nightly job tightens it via ``--fill-tolerance``.
    fill_abs: float = 0.5

    def __post_init__(self) -> None:
        for name in ("throughput_frac", "p95_frac", "p95_floor_ms",
                     "shed_abs", "failure_abs", "fill_abs"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.throughput_frac >= 1.0:
            raise ValueError(
                f"throughput_frac must be < 1, got {self.throughput_frac}"
            )


def compare_reports(
    baseline: dict, current: dict, tol: GateTolerances | None = None
) -> list[str]:
    """Regressions of ``current`` against ``baseline``; empty means pass.

    Runs are matched by label.  A finding is raised for: a baseline run
    missing from the current report, a failed (``ok: false``) current
    run, a conservation violation, throughput below ``baseline * (1 -
    throughput_frac)``, p95 coalesce latency beyond both the fractional
    allowance and the absolute floor, shed/failure rates exceeding the
    baseline by more than their absolute tolerances, mean flush fill
    more than ``fill_abs`` below the baseline (the wave fill-ratio gate
    of ``/graph`` cells), and a graph cell whose node accounting does not
    conserve.  A trace fingerprint mismatch invalidates the whole
    comparison.
    """
    tol = tol or GateTolerances()
    findings: list[str] = []

    base_sha = baseline.get("trace", {}).get("sha256")
    cur_sha = current.get("trace", {}).get("sha256")
    if base_sha and cur_sha and base_sha != cur_sha:
        findings.append(
            "trace mismatch: baseline and current reports replay different "
            f"traces (sha {base_sha[:12]}… vs {cur_sha[:12]}…)"
        )

    current_by_label = {r.get("label"): r for r in current.get("runs", [])}
    for base_run in baseline.get("runs", []):
        label = base_run.get("label")
        cur = current_by_label.get(label)
        if cur is None:
            findings.append(f"{label}: run missing from current report")
            continue
        if not cur.get("ok", False):
            findings.append(
                f"{label}: failed run ({cur.get('error', 'no error recorded')})"
            )
            continue
        if not cur.get("conservation_ok", False):
            unaccounted = cur.get("metrics", {}).get("unaccounted")
            findings.append(
                f"{label}: conservation violated "
                f"(submitted != completed + failed + shed; "
                f"unaccounted={unaccounted})"
            )
        if not base_run.get("ok", False):
            continue  # nothing numeric to compare against

        base_tp, cur_tp = base_run["throughput_rps"], cur["throughput_rps"]
        if cur_tp < base_tp * (1.0 - tol.throughput_frac):
            findings.append(
                f"{label}: throughput regressed {cur_tp:.0f} req/s vs "
                f"baseline {base_tp:.0f} req/s "
                f"(-{(1 - cur_tp / base_tp) * 100:.1f}%, "
                f"tolerance {tol.throughput_frac * 100:.0f}%)"
            )
        base_p95, cur_p95 = base_run["coalesce_p95_ms"], cur["coalesce_p95_ms"]
        allowed_p95 = max(
            base_p95 * (1.0 + tol.p95_frac), base_p95 + tol.p95_floor_ms
        )
        if cur_p95 > allowed_p95:
            findings.append(
                f"{label}: p95 coalesce latency regressed "
                f"{cur_p95:.3f} ms vs baseline {base_p95:.3f} ms "
                f"(allowed {allowed_p95:.3f} ms)"
            )
        if cur["shed_rate"] > base_run["shed_rate"] + tol.shed_abs:
            findings.append(
                f"{label}: shed rate regressed {cur['shed_rate']:.3f} vs "
                f"baseline {base_run['shed_rate']:.3f} "
                f"(+{tol.shed_abs:.3f} allowed)"
            )
        if cur["failure_rate"] > base_run["failure_rate"] + tol.failure_abs:
            findings.append(
                f"{label}: failure rate regressed {cur['failure_rate']:.3f} "
                f"vs baseline {base_run['failure_rate']:.3f} "
                f"(+{tol.failure_abs:.3f} allowed)"
            )
        base_fill, cur_fill = base_run.get("fill_mean"), cur.get("fill_mean")
        if (
            base_fill is not None
            and cur_fill is not None
            and cur_fill < base_fill - tol.fill_abs
        ):
            findings.append(
                f"{label}: mean flush fill regressed {cur_fill:.3f} vs "
                f"baseline {base_fill:.3f} (-{tol.fill_abs:.3f} allowed)"
            )
        base_graph, cur_graph = base_run.get("graph"), cur.get("graph")
        if base_graph and cur_graph and not cur_graph.get("conservation_ok", False):
            findings.append(
                f"{label}: graph node conservation violated "
                f"(nodes != completed + failed + dep_failed + shed)"
            )
    return findings


@dataclass(frozen=True)
class ControllerGate:
    """Tolerances of the controlled-vs-static gate.

    "Meets or beats" with slack: a controlled run passes when its
    throughput reaches the *best* static sibling within
    ``throughput_frac``, and its p99 coalesce latency stays within the
    best static sibling's p99 by both the fractional allowance and an
    absolute floor (short replays put p99 in scheduler-noise territory).
    """

    throughput_frac: float = 0.15
    p99_frac: float = 0.5
    p99_floor_ms: float = 1.0

    def __post_init__(self) -> None:
        for name in ("throughput_frac", "p99_frac", "p99_floor_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.throughput_frac >= 1.0:
            raise ValueError(
                f"throughput_frac must be < 1, got {self.throughput_frac}"
            )


def _p99(run: dict) -> float | None:
    """The run's p99 coalesce latency; ``None`` when the report predates it.

    This used to silently substitute p95 for pre-v2 runs, which let a
    controlled cell's tail hide behind a sibling's body quantile.  The
    gate now treats a missing p99 as its own finding instead
    (:func:`compare_controlled`).
    """
    return run.get("coalesce_p99_ms")


def compare_controlled(
    report: dict, tol: ControllerGate | None = None
) -> list[str]:
    """Gate every controlled run against its static siblings; empty = pass.

    Works entirely *within* one report — controlled and static cells ran
    on the same machine minutes apart, so machine-speed variance cancels
    and no baseline regeneration is needed.  Siblings are the static
    runs sharing the controlled run's backend and shard count (the cold
    knobs the controller cannot change).  Findings: a failed or
    conservation-violating controlled run, a non-deterministic decision
    journal, throughput below the best static sibling beyond tolerance,
    or p99 coalesce latency above the best static sibling beyond
    tolerance.  A controlled run with no static siblings is a finding
    too — an unanchored "pass" would be meaningless.
    """
    tol = tol or ControllerGate()
    findings: list[str] = []
    runs = report.get("runs", [])
    controlled = [r for r in runs if r.get("controller")]
    static = [r for r in runs if not r.get("controller") and r.get("ok", False)]
    for run in controlled:
        label = run.get("label", "?")
        if not run.get("ok", False):
            findings.append(
                f"{label}: failed run ({run.get('error', 'no error recorded')})"
            )
            continue
        if not run.get("conservation_ok", False):
            findings.append(f"{label}: conservation violated")
        ctl = run.get("controller", {})
        if not ctl.get("deterministic", False):
            findings.append(
                f"{label}: decision journal did not replay deterministically"
            )
        policy = run.get("policy", {})
        siblings = [
            s
            for s in static
            if s.get("policy", {}).get("backend") == policy.get("backend")
            and s.get("policy", {}).get("shards") == policy.get("shards")
        ]
        if not siblings:
            findings.append(
                f"{label}: no static sibling cells "
                f"(backend={policy.get('backend')}, "
                f"shards={policy.get('shards')}) to gate against"
            )
            continue
        best_tp = max(s["throughput_rps"] for s in siblings)
        cur_tp = run["throughput_rps"]
        if cur_tp < best_tp * (1.0 - tol.throughput_frac):
            findings.append(
                f"{label}: throughput {cur_tp:.0f} req/s below best static "
                f"{best_tp:.0f} req/s "
                f"(-{(1 - cur_tp / best_tp) * 100:.1f}%, "
                f"tolerance {tol.throughput_frac * 100:.0f}%)"
            )
        cur_p99 = _p99(run)
        sibling_p99s = [p for p in (_p99(s) for s in siblings) if p is not None]
        if cur_p99 is None or not sibling_p99s:
            # Pre-v2 reports carry only p95; gating the tail against a
            # body quantile would be a silent substitution, so flag it.
            missing = "controlled run" if cur_p99 is None else "static siblings"
            findings.append(
                f"{label}: p99 gate has no data — {missing} lack "
                "coalesce_p99_ms (pre-v2 report; regenerate instead of "
                "letting p95 stand in)"
            )
        else:
            best_p99 = min(sibling_p99s)
            allowed_p99 = max(
                best_p99 * (1.0 + tol.p99_frac), best_p99 + tol.p99_floor_ms
            )
            if cur_p99 > allowed_p99:
                findings.append(
                    f"{label}: p99 coalesce latency {cur_p99:.3f} ms above "
                    f"best static {best_p99:.3f} ms "
                    f"(allowed {allowed_p99:.3f} ms)"
                )
    if not controlled:
        findings.append("no controlled runs in report to gate")
    return findings


def render_controlled(findings: list[str], report: dict) -> str:
    """The controlled gate's verdict, findings first."""
    controlled = [r for r in report.get("runs", []) if r.get("controller")]
    lines = []
    if findings:
        lines.append(f"CONTROLLED GATE: {len(findings)} finding(s)")
        lines.extend(f"  - {finding}" for finding in findings)
    else:
        lines.append(
            f"ok: {len(controlled)} controlled run(s) meet or beat their "
            "static siblings"
        )
    return "\n".join(lines)


def compare_slo(report: dict) -> list[str]:
    """Gate every run's whole-run SLO verdict; empty = pass.

    Reads the per-run ``slo`` blocks a v3 report carries when generated
    with objectives (``replay-check --slo``, :func:`run_replay_grid`
    ``slo=``).  Findings: a run with no block (older report — regenerate
    rather than silently passing), and every objective whose exact bad
    fraction exceeded its error budget over the whole run.
    """
    findings: list[str] = []
    for run in report.get("runs", []):
        label = run.get("label", "?")
        if not run.get("ok", False):
            continue  # compare_reports already flags failed runs
        slo = run.get("slo")
        if not slo:
            findings.append(
                f"{label}: no slo block in report "
                "(regenerate with replay-check --slo)"
            )
            continue
        for res in slo.get("results", []):
            if res.get("ok", False):
                continue
            if "error" in res:
                findings.append(
                    f"{label}: {res.get('objective', '?')}: {res['error']}"
                )
                continue
            findings.append(
                f"{label}: {res.get('objective', '?')} violated — "
                f"observed p{res.get('quantile')} "
                f"{res.get('observed_ms', 0.0):.3f} ms, "
                f"bad fraction {res.get('bad_frac', 0.0):.4f} "
                f"(budget {1.0 - res.get('quantile', 0.0) / 100.0:.4f}, "
                f"burn {res.get('burn', 0.0):.2f})"
            )
    if not report.get("runs"):
        findings.append("no runs in report to gate")
    return findings


def render_slo(findings: list[str], report: dict) -> str:
    """The SLO gate's verdict, findings first."""
    with_slo = [
        r for r in report.get("runs", []) if r.get("ok", False) and r.get("slo")
    ]
    lines = []
    if findings:
        lines.append(f"SLO GATE: {len(findings)} finding(s)")
        lines.extend(f"  - {finding}" for finding in findings)
    else:
        lines.append(
            f"ok: {len(with_slo)} run(s) within their error budgets"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TierGate:
    """Floors and tolerances for the ``replay-check --tiers`` gate.

    ``min_jain`` and ``min_best_effort_shed_frac`` are *absolute* floors
    on the current report: the multi-tenant trace is built so a working
    admission layer keeps tenant fairness high precisely *by* metering
    the best-effort flood — if nothing sheds, fair queuing never
    engaged.  Quota sheds are driven by trace arrival times against the
    policy's refill rate, not machine speed, so the shed floor is stable
    across hosts.  The baseline-relative checks (``jain_drop_abs``,
    ``gold_shed_abs``) catch regressions the absolute floors would let
    slide — and make a doctored baseline trip the gate.
    """

    min_jain: float = 0.9
    min_best_effort_shed_frac: float = 0.30
    jain_drop_abs: float = 0.005
    gold_shed_abs: float = 0.02


def compare_tiers(
    baseline: dict, current: dict, tol: TierGate | None = None
) -> list[str]:
    """Gate the tiered cells of ``current`` against floors and a baseline.

    Findings (any string fails the gate):

    - no tiered run in the current report, or a tiered run that failed
      or violated conservation;
    - a tier whose coalesce p99 exceeded its policy ``p99_budget_ms``
      (the gold budget is the headline acceptance check);
    - tenant fairness (Jain's index over per-tenant completions) below
      the absolute floor, or dropped more than ``jain_drop_abs`` below
      the baseline's;
    - a best-effort shed fraction under the floor — the flood was
      admitted instead of metered;
    - gold shedding more than ``gold_shed_abs`` above the baseline's
      gold shed fraction (strict priority inverted);
    - a tiered baseline run missing from the current report.
    """
    tol = tol or TierGate()
    findings: list[str] = []
    current_by_label = {
        run.get("label", "?"): run
        for run in current.get("runs", [])
        if run.get("tiers")
    }
    if not current_by_label:
        findings.append(
            "no tiered runs in current report to gate "
            "(regenerate with replay-check --tiers)"
        )
        return findings
    base_by_label = {
        run.get("label", "?"): run
        for run in baseline.get("runs", [])
        if run.get("tiers")
    }
    if not base_by_label:
        findings.append(
            "baseline has no tiered runs (regenerate the tiers baseline)"
        )
    for label, base_run in base_by_label.items():
        if label not in current_by_label:
            findings.append(f"{label}: tiered baseline run missing from report")
    for label, run in sorted(current_by_label.items()):
        if not run.get("ok", False):
            findings.append(
                f"{label}: failed run ({run.get('error', 'no error recorded')})"
            )
            continue
        if not run.get("conservation_ok", False):
            findings.append(f"{label}: request conservation violated")
        tiers = run["tiers"]
        by_tier = tiers.get("by_tier", {})
        budgets = {
            spec.get("name"): spec.get("p99_budget_ms")
            for spec in tiers.get("policy", {}).get("tiers", [])
        }
        for tier_name, row in by_tier.items():
            budget = budgets.get(tier_name)
            p99 = row.get("coalesce_p99_ms")
            if budget is not None and p99 is not None and p99 > budget:
                findings.append(
                    f"{label}: {tier_name} coalesce p99 {p99:.3f} ms over "
                    f"its {budget:g} ms budget"
                )
        jain = tiers.get("jain_fairness", 0.0)
        if jain < tol.min_jain:
            findings.append(
                f"{label}: tenant fairness (Jain) {jain:.3f} below the "
                f"{tol.min_jain:g} floor"
            )
        best_effort = by_tier.get("best_effort", {})
        if best_effort.get("submitted"):
            shed_frac = best_effort.get("shed", 0) / best_effort["submitted"]
            if shed_frac < tol.min_best_effort_shed_frac:
                findings.append(
                    f"{label}: best-effort shed fraction {shed_frac:.2f} "
                    f"below the {tol.min_best_effort_shed_frac:g} floor — "
                    "admission is not metering the flood"
                )
        base_run = base_by_label.get(label)
        if base_run is None or not base_run.get("ok", False):
            continue
        base_tiers = base_run["tiers"]
        base_jain = base_tiers.get("jain_fairness")
        if base_jain is not None and jain < base_jain - tol.jain_drop_abs:
            findings.append(
                f"{label}: tenant fairness (Jain) {jain:.3f} regressed vs "
                f"baseline {base_jain:.3f} (-{tol.jain_drop_abs:g} allowed)"
            )
        gold = by_tier.get("gold", {})
        if gold.get("submitted"):
            gold_frac = gold.get("shed", 0) / gold["submitted"]
            base_gold = base_tiers.get("by_tier", {}).get("gold", {})
            base_frac = (
                base_gold.get("shed", 0) / base_gold["submitted"]
                if base_gold.get("submitted")
                else 0.0
            )
            if gold_frac > base_frac + tol.gold_shed_abs:
                findings.append(
                    f"{label}: gold shed fraction {gold_frac:.3f} vs "
                    f"baseline {base_frac:.3f} (+{tol.gold_shed_abs:g} allowed)"
                )
    return findings


def render_tiers(findings: list[str], report: dict) -> str:
    """The tier gate's verdict: per-tier table first, then findings."""
    from repro.utils.tables import format_table

    lines = []
    for run in report.get("runs", []):
        tiers = run.get("tiers")
        if not run.get("ok", False) or not tiers:
            continue
        rows = []
        for tier_name, row in tiers.get("by_tier", {}).items():
            rows.append(
                [
                    tier_name,
                    row.get("submitted", 0),
                    row.get("completed", 0),
                    row.get("failed", 0),
                    row.get("shed", 0),
                    round(row.get("coalesce_p99_ms", 0.0), 3),
                    round(row.get("service_p99_ms", 0.0), 3),
                ]
            )
        table = format_table(
            ["tier", "submitted", "completed", "failed", "shed",
             "coalesce p99 ms", "service p99 ms"],
            rows,
        )
        hedges = tiers.get("hedges") or {}
        hedged = (
            f", hedges {hedges['attempted']} "
            f"(primary {hedges.get('won_primary', 0)}, "
            f"hedge {hedges.get('won_hedge', 0)})"
            if hedges.get("attempted")
            else ""
        )
        lines.append(
            f"{run.get('label', '?')}: tenant fairness (Jain) "
            f"{tiers.get('jain_fairness', 0.0):.3f}{hedged}"
        )
        lines.append(table)
    if findings:
        lines.append(f"TIER GATE: {len(findings)} finding(s)")
        lines.extend(f"  - {finding}" for finding in findings)
    else:
        gated = [
            r for r in report.get("runs", []) if r.get("ok") and r.get("tiers")
        ]
        lines.append(
            f"ok: {len(gated)} tiered run(s) within budget, fairness floor, "
            "and baseline tolerance"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ArenaGate:
    """Tolerances of the zero-copy data-plane gate.

    ``min_copy_reduction`` is the headline acceptance check: an arena
    cell's flush path must copy at least that factor fewer bytes than
    its pickle sibling (same backend prefix, same policy knobs, same
    report — machine speed cancels).  The staged path copies *zero*
    bytes per flush, so in practice the arena side of the ratio is only
    the dense fallbacks (mixed-dtype buckets, solo retries); a pool that
    silently stopped staging fails this immediately.
    ``throughput_frac`` bounds how much throughput an arena cell may
    give up against that same sibling — zero-copy that costs more than
    it saves is a regression, not a feature.  ``copy_growth_frac``
    bounds fallback-byte growth against a committed baseline when one is
    supplied: staged flushes contribute zero bytes deterministically, so
    a creeping fallback share shows up as byte growth long before it
    shows up in wall clocks.
    """

    min_copy_reduction: float = 2.0
    throughput_frac: float = 0.2
    copy_growth_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.min_copy_reduction < 1.0:
            raise ValueError(
                f"min_copy_reduction must be >= 1, got {self.min_copy_reduction}"
            )
        if not 0.0 <= self.throughput_frac < 1.0:
            raise ValueError(
                f"throughput_frac must be in [0, 1), got {self.throughput_frac}"
            )
        if self.copy_growth_frac < 0:
            raise ValueError(
                f"copy_growth_frac must be >= 0, got {self.copy_growth_frac}"
            )


def compare_arena(
    report: dict, tol: ArenaGate | None = None, baseline: dict | None = None
) -> list[str]:
    """Gate every ``/arena`` run against its pickle sibling; empty = pass.

    Like :func:`compare_controlled`, the gate works *within* one report:
    :func:`policy_grid` emits each arena cell next to the flat cell of
    the same cross-product row, so ``process/tb64/d2ms/arena`` is judged
    against ``process/tb64/d2ms`` from the same grid run.  Findings:

    - no arena runs in the report (regenerate with ``replay-check
      --arena``), a failed arena run, or one violating request
      conservation;
    - a missing ``arena`` block, slot leakage (``slots_staged !=
      slots_released`` — every lease must be released exactly once, on
      scatter, failure, preemption, or close), or ``bytes_staged == 0``
      (the pool disabled itself and every flush fell back to copies);
    - a missing or byte-less pickle sibling (nothing to compare
      against), flush-path copied bytes not at least
      ``min_copy_reduction``× below the sibling's, or throughput more
      than ``throughput_frac`` below the sibling's;
    - with a ``baseline``: an arena baseline run missing from the
      current report, or fallback-copied bytes grown more than
      ``copy_growth_frac`` over the baseline's.
    """
    tol = tol or ArenaGate()
    findings: list[str] = []
    runs = report.get("runs", [])
    by_label = {r.get("label", "?"): r for r in runs}
    arena_runs = [r for r in runs if str(r.get("label", "")).endswith("/arena")]
    if not arena_runs:
        findings.append(
            "no arena runs in report to gate (regenerate with replay-check --arena)"
        )
        return findings
    for run in arena_runs:
        label = run.get("label", "?")
        if not run.get("ok", False):
            findings.append(
                f"{label}: failed run ({run.get('error', 'no error recorded')})"
            )
            continue
        if not run.get("conservation_ok", False):
            findings.append(f"{label}: request conservation violated")
        arena = run.get("arena")
        if not arena:
            findings.append(
                f"{label}: no arena block in report (staging never engaged)"
            )
            continue
        leaked = arena.get("leaked", 0)
        if leaked:
            findings.append(
                f"{label}: slot conservation violated — {leaked} lease(s) "
                f"leaked ({arena.get('slots_staged', 0)} staged, "
                f"{arena.get('slots_released', 0)} released)"
            )
        if not arena.get("bytes_staged", 0):
            findings.append(
                f"{label}: bytes_staged == 0 — the pool never staged a slot "
                "(disabled or fallback-only); zero-copy is not engaged"
            )
            continue
        sibling = by_label.get(label[: -len("/arena")])
        if sibling is None or not sibling.get("ok", False):
            findings.append(
                f"{label}: no pickle sibling cell to gate the copy "
                "reduction against"
            )
            continue
        sibling_copied = (sibling.get("arena") or {}).get("bytes_copied_fallback", 0)
        arena_copied = arena.get("bytes_copied_fallback", 0)
        if not sibling_copied:
            findings.append(
                f"{label}: pickle sibling copied no flush bytes — nothing "
                "to compare the staged path against"
            )
        elif arena_copied * tol.min_copy_reduction > sibling_copied:
            ratio = sibling_copied / arena_copied if arena_copied else float("inf")
            findings.append(
                f"{label}: flush path copied {arena_copied} B vs sibling "
                f"{sibling_copied} B — only {ratio:.2f}x below, "
                f"{tol.min_copy_reduction:g}x required"
            )
        sib_tp, cur_tp = sibling["throughput_rps"], run["throughput_rps"]
        if cur_tp < sib_tp * (1.0 - tol.throughput_frac):
            findings.append(
                f"{label}: throughput {cur_tp:.0f} req/s below pickle sibling "
                f"{sib_tp:.0f} req/s "
                f"(-{(1 - cur_tp / sib_tp) * 100:.1f}%, "
                f"tolerance {tol.throughput_frac * 100:.0f}%)"
            )
    if baseline is not None:
        base_arena = [
            r
            for r in baseline.get("runs", [])
            if str(r.get("label", "")).endswith("/arena")
        ]
        if not base_arena:
            findings.append(
                "baseline has no arena runs (regenerate the arena baseline)"
            )
        for base_run in base_arena:
            label = base_run.get("label", "?")
            cur = by_label.get(label)
            if cur is None:
                findings.append(f"{label}: arena baseline run missing from report")
                continue
            if not base_run.get("ok", False) or not cur.get("ok", False):
                continue
            base_copied = (base_run.get("arena") or {}).get(
                "bytes_copied_fallback", 0
            )
            cur_copied = (cur.get("arena") or {}).get("bytes_copied_fallback", 0)
            allowed = base_copied * (1.0 + tol.copy_growth_frac)
            if base_copied and cur_copied > allowed:
                findings.append(
                    f"{label}: fallback-copied bytes grew {cur_copied} B vs "
                    f"baseline {base_copied} B "
                    f"(allowed {allowed:.0f} B) — the staged share shrank"
                )
    return findings


def render_arena(findings: list[str], report: dict) -> str:
    """The arena gate's verdict: per-run data-plane table, then findings."""
    from repro.utils.tables import format_table

    lines = []
    rows = []
    for run in report.get("runs", []):
        arena = run.get("arena")
        if not run.get("ok", False) or not arena:
            continue
        rows.append(
            [
                run.get("label", "?"),
                arena.get("slots_staged", 0),
                arena.get("slots_released", 0),
                arena.get("leaked", 0),
                arena.get("bytes_staged", 0),
                arena.get("bytes_copied_fallback", 0),
                arena.get("hwm_bytes", 0),
            ]
        )
    if rows:
        lines.append(
            format_table(
                ["run", "staged", "released", "leaked", "bytes staged",
                 "bytes copied", "hwm bytes"],
                rows,
            )
        )
    if findings:
        lines.append(f"ARENA GATE: {len(findings)} finding(s)")
        lines.extend(f"  - {finding}" for finding in findings)
    else:
        gated = [
            r
            for r in report.get("runs", [])
            if str(r.get("label", "")).endswith("/arena")
        ]
        lines.append(
            f"ok: {len(gated)} arena run(s) conserve slots and cut "
            "flush-path copies vs their pickle siblings"
        )
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Human-readable per-run table of one replay report."""
    from repro.utils.tables import format_table

    rows = []
    for run in report.get("runs", []):
        if not run.get("ok", False):
            rows.append([run.get("label", "?"), "FAILED",
                         run.get("error", "")[:48], "", "", "", ""])
            continue
        rows.append(
            [
                run["label"],
                run["completed"],
                run["failed"],
                run["shed"],
                round(run["throughput_rps"], 0),
                round(run["coalesce_p95_ms"], 3),
                round(run["batch_mean"], 1),
            ]
        )
    table = format_table(
        ["run", "completed", "failed", "shed", "req/s", "p95 ms", "batch"], rows
    )
    trace = report.get("trace", {})
    head = (
        f"trace {trace.get('name') or trace.get('path', '?')}: "
        f"{trace.get('events', '?')} events over "
        f"{trace.get('duration_s', 0.0) * 1e3:.1f} ms"
    )
    return f"{head}\n{table}"


def render_comparison(findings: list[str], baseline: dict, current: dict) -> str:
    """The gate's verdict, findings first."""
    lines = []
    if findings:
        lines.append(f"REGRESSION: {len(findings)} finding(s)")
        lines.extend(f"  - {finding}" for finding in findings)
    else:
        runs = len(baseline.get("runs", []))
        lines.append(f"ok: {runs} run(s) within tolerance of baseline")
    return "\n".join(lines)
