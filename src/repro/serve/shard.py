"""The sharded broker fabric: N broker event loops behind one front door.

A single :class:`~repro.serve.broker.SolveBroker` runs every stage of
every request on one asyncio loop — deadline ticks, bucket bookkeeping,
flush dispatch, and result scatter all contend for the same thread, which
caps throughput well before the flush backends do.  The fabric scales
past that loop the way the paper's interleaved layout scales past one
matrix: partition the work into homogeneous slices and run each slice on
its own lane.

:class:`ShardedBroker` owns N :class:`BrokerShard`\\ s.  Each shard runs
one ``SolveBroker`` on a private event loop in a private thread, with its
own :class:`~repro.serve.executor.BatchExecutor` and its own backend
instance (its own process pool, its own shadow mirror, ...).  A
:class:`~repro.serve.router.ShardRouter` places every submission under
one of two policies — ``size`` (one shard owns each size class; flushes
stay as homogeneous as the paper's chunks) or ``hash`` (a hot size
spreads across shards on a stable ring).  The fabric preserves the plain
broker's contract — ``submit()``/``factor()``/``solve()`` awaitables,
async context manager, ``metrics``, graceful drain on close — so every
existing call site (`serve-demo`, ``serving_traffic.py``, the ALS
example, trace replay) can swap it in via :func:`make_broker` without
changes.

Failure semantics: killing a shard (:meth:`ShardedBroker.kill_shard`, or
the shard loop dying on its own) fails **only that shard's** in-flight
futures with :class:`~repro.serve.policy.ShardDown`, keeps accounting
conserved (they are recorded as failures), and removes the shard from the
router so new work flows around it.  The fabric never hangs on a dead
shard; it raises :class:`ShardDown` only when *no* shard is left.

Observability: each shard's broker gets a
:class:`~repro.obs.tracer.TaggedTracer` stamping ``shard=k`` onto every
span and counter series, per-shard metrics stay inspectable via
:meth:`ShardedBroker.per_shard_metrics`, and the fabric-level
:attr:`ShardedBroker.metrics` is the exact element-wise merge
(:meth:`~repro.serve.metrics.ServeMetrics.merged`) of the shards.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading

import numpy as np

from repro.autotune.dispatch import TunedDispatcher
from repro.obs.tracer import TaggedTracer, get_tracer
from repro.serve.admission import AdmissionController, make_admission
from repro.serve.batcher import KINDS
from repro.serve.broker import SolveBroker
from repro.serve.metrics import ServeMetrics
from repro.serve.policy import (
    HedgeFailed,
    ServeError,
    ServePolicy,
    ServiceClosed,
    ShardDown,
)
from repro.serve.router import RING_REPLICAS, ShardRouter


class BrokerShard:
    """One broker on one private event loop in one private thread.

    The shard is the fabric's unit of isolation: its broker, batcher,
    executor, and backend instance live entirely on (or are owned by) the
    shard's loop thread, and the only cross-thread traffic is
    ``run_coroutine_threadsafe`` handoffs.  The fabric talks to it
    through three doors: :meth:`submit` (returns a
    ``concurrent.futures.Future``), :meth:`begin_close` (graceful drain),
    and :meth:`kill` (abrupt death for fault injection — fails every
    held future with :class:`ShardDown` and stops the loop).
    """

    def __init__(
        self,
        shard_id: int,
        policy: ServePolicy,
        dispatcher: TunedDispatcher | None = None,
        tracer=None,
        metrics: ServeMetrics | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.policy = policy
        #: Set before the loop is asked to stop, so the fabric can route
        #: around this shard without racing the loop's death.
        self.dead = threading.Event()
        self._loop = asyncio.new_event_loop()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # Handoff futures not yet resolved; anything still here when the
        # loop exits is failed with ShardDown so no caller ever hangs on
        # a callback the dead loop will never run.
        self._outstanding: set[concurrent.futures.Future] = set()
        self._finished = threading.Event()
        self._kill_requested = False
        self.broker = SolveBroker(
            policy=policy,
            dispatcher=dispatcher,
            metrics=metrics,
            tracer=TaggedTracer({"shard": shard_id}, inner=tracer),
            recorder=None,  # the fabric records arrivals, with shard ids
            shard_id=shard_id,
            # The fabric's shards share ONE controller: quotas and fair-
            # queue clocks are fabric-wide facts, not per-shard ones.
            admission=admission,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "BrokerShard":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"repro-shard-{self.shard_id}", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._fail_outstanding()
            with contextlib.suppress(Exception):
                self._loop.close()

    def _fail_outstanding(self) -> None:
        self._finished.set()
        with self._lock:
            pending = list(self._outstanding)
            self._outstanding.clear()
        for cf in pending:
            self._fail_cf(cf)

    def _fail_cf(self, cf: concurrent.futures.Future) -> None:
        if not cf.done():
            with contextlib.suppress(concurrent.futures.InvalidStateError):
                cf.set_exception(
                    ShardDown(f"shard {self.shard_id} stopped before responding")
                )

    def _discard(self, cf: concurrent.futures.Future) -> None:
        with self._lock:
            self._outstanding.discard(cf)

    # ------------------------------------------------------------------
    # Submission handoff
    # ------------------------------------------------------------------

    def submit(
        self, kind, a, b=None, tier=None, tenant=None
    ) -> concurrent.futures.Future:
        """Hand one request to this shard's broker; thread-safe.

        Raises :class:`ShardDown` immediately when the shard is already
        known-dead, so the router can place the request elsewhere before
        any state changes hands.
        """
        if self.dead.is_set():
            raise ShardDown(f"shard {self.shard_id} is down")
        try:
            cf = asyncio.run_coroutine_threadsafe(
                self.broker.submit(kind, a, b, tier=tier, tenant=tenant),
                self._loop,
            )
        except RuntimeError:  # loop closed under us
            raise ShardDown(f"shard {self.shard_id} is down") from None
        with self._lock:
            self._outstanding.add(cf)
        cf.add_done_callback(self._discard)
        # The loop may have finished between scheduling and registration;
        # the finished flag is set before outstanding futures are failed,
        # so checking it here closes the race.
        if self._finished.is_set():
            self._fail_cf(cf)
        return cf

    # ------------------------------------------------------------------
    # Shutdown paths
    # ------------------------------------------------------------------

    def begin_close(self, drain: bool = True) -> concurrent.futures.Future | None:
        """Start a graceful broker close on the shard loop.

        Returns the handoff future of ``broker.close`` (awaitable via
        ``asyncio.wrap_future``), or ``None`` when the shard is already
        dead or never started.  :meth:`shutdown` must still run afterwards
        to stop the loop and join the thread.
        """
        if self.dead.is_set() or self._thread is None:
            return None
        self.dead.set()
        try:
            return asyncio.run_coroutine_threadsafe(
                self.broker.close(drain=drain), self._loop
            )
        except RuntimeError:
            return None

    def kill(self) -> None:
        """Abrupt death: fail everything this shard holds, stop its loop.

        Models a shard crash (the in-process analogue of SIGKILLing a
        shard process): no drain, no flush of queued buckets — every
        pending and in-flight future fails with :class:`ShardDown`, and
        accounting still balances because those futures are recorded as
        failures.  Idempotent and non-blocking; the loop thread finishes
        asynchronously and :meth:`shutdown` (or fabric close) reaps it.
        """
        if self.dead.is_set():
            return
        self.dead.set()
        self._kill_requested = True
        coro = self._kill()
        try:
            asyncio.run_coroutine_threadsafe(coro, self._loop)
        except RuntimeError:  # loop already gone — nothing left to kill
            coro.close()

    async def _kill(self) -> None:
        broker = self.broker
        broker._closed = True  # reject submissions that beat the dead flag
        broker.fail_pending(ShardDown(f"shard {self.shard_id} killed"))
        # Give awaiting submit coroutines a few loop iterations to observe
        # their failed futures and resolve their handoff futures cleanly.
        for _ in range(3):
            await asyncio.sleep(0)
        tasks = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.wait(tasks, timeout=1.0)
        asyncio.get_running_loop().stop()

    def shutdown(self) -> None:
        """Stop the loop (if still running), join the thread, free the backend."""
        self.dead.set()
        if self._thread is None:
            return
        # A requested kill stops the loop itself; racing a second stop in
        # could halt the loop before the kill coroutine ever starts,
        # leaving it queued (and unawaited) forever.
        if not self._finished.is_set() and not self._kill_requested:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        # A killed shard's broker never ran close(), so its executor (and
        # backend — worker pools, and the arena-process backend's shared-
        # memory segments, which the OS will NOT reclaim on its own) is
        # still open; release it here.  Each shard's backend owns its own
        # ArenaPool, so this unlinks exactly this shard's segments.
        with contextlib.suppress(Exception):
            self.broker.executor.close()


class ShardedBroker:
    """N broker shards behind one router, presenting one broker surface.

    Use exactly like a :class:`~repro.serve.broker.SolveBroker`::

        async with ShardedBroker(policy, shards=4, placement="size") as broker:
            x = await broker.solve(a, b)

    or let :func:`make_broker` pick the shape from the policy.  The
    fabric runs on the *caller's* event loop; each shard runs on its own.
    """

    def __init__(
        self,
        policy: ServePolicy | None = None,
        dispatcher: TunedDispatcher | None = None,
        tracer=None,
        recorder=None,
        shards: int | None = None,
        placement: str | None = None,
        ring_replicas: int = RING_REPLICAS,
        admission: AdmissionController | None = None,
    ) -> None:
        self.policy = policy or ServePolicy()
        count = shards if shards is not None else self.policy.shard_count()
        if count <= 0:
            raise ValueError(f"shards must be positive, got {count}")
        self.placement = (
            placement if placement is not None else self.policy.placement_name()
        )
        self._tracer = tracer
        self.recorder = recorder
        #: One :class:`~repro.serve.admission.AdmissionController` shared
        #: by every shard broker (it is thread-safe by contract), plus
        #: the fabric's own hedging of premium tiers (see :meth:`submit`).
        self.admission = admission
        #: Hedge accounting: attempts, and which copy won the race.
        self.hedges = {"attempted": 0, "won_primary": 0, "won_hedge": 0}
        self.router = ShardRouter(
            range(count), placement=self.placement, replicas=ring_replicas
        )
        self.shards: dict[int, BrokerShard] = {
            k: BrokerShard(
                k,
                self.policy,
                dispatcher=dispatcher,
                tracer=tracer,
                admission=admission,
            )
            for k in range(count)
        }
        self._seq = 0
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        """The explicit tracer if one was injected, else the global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def backend_name(self) -> str:
        """Name of the executor backend serving the shards' flushes."""
        return self.shards[0].broker.backend_name

    async def start(self) -> "ShardedBroker":
        """Start every shard's loop thread (idempotent)."""
        if not self._started:
            self._started = True
            for shard in self.shards.values():
                shard.start()
        return self

    async def close(self, drain: bool = True) -> None:
        """Drain (or drop) queued work on every live shard, then stop them."""
        if self._closed:
            return
        self._closed = True
        closes = []
        for shard in self.shards.values():
            cf = shard.begin_close(drain=drain)
            if cf is not None:
                closes.append(asyncio.wrap_future(cf))
        if closes:
            await asyncio.gather(*closes, return_exceptions=True)
        for shard in self.shards.values():
            shard.shutdown()

    async def __aenter__(self) -> "ShardedBroker":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def warmup(self, ns) -> None:
        """Pre-resolve kernel configs on every shard's executor."""
        sizes = list(ns)
        for shard in self.shards.values():
            shard.broker.warmup(sizes)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def factor(self, a: np.ndarray, **kwargs) -> np.ndarray:
        """Factor one SPD matrix; resolves to its ``(n, n)`` lower factor."""
        return await self.submit("factor", a, **kwargs)

    async def solve(self, a: np.ndarray, b: np.ndarray, **kwargs) -> np.ndarray:
        """Solve ``A x = b`` for one SPD matrix; resolves to ``x``."""
        return await self.submit("solve", a, b, **kwargs)

    async def submit(
        self,
        kind: str,
        a: np.ndarray,
        b: np.ndarray | None = None,
        tier: str | None = None,
        tenant: str | None = None,
    ) -> np.ndarray:
        """Route one request to its shard and await the result.

        Mirrors ``SolveBroker.submit`` errors: ``ValueError`` for bad
        inputs, ``ServiceClosed`` after close, ``ServiceOverloaded`` when
        the target shard sheds, plus :class:`ShardDown` when the shard
        holding the request dies (or none are left to take it).

        With an admission controller attached, a tier whose ``hedge_ms``
        budget the primary shard's observed service p99 exceeds races a
        second copy on another alive shard: first completion wins, the
        loser is cancelled, and the caller still sees exactly one result
        (or one error, when every copy fails).
        """
        n = self._check(kind, a, b)
        if self._closed:
            raise ServiceClosed("broker is closed")
        if self.admission is not None:
            tier, tenant = self.admission.resolve(tier, tenant)
        await self.start()
        self._seq += 1
        seq = self._seq
        target, shard, cf = self._place(kind, a, b, n, seq, tier, tenant)
        if self.recorder is not None:
            # Offered load, like the plain broker's hook — the event is
            # recorded whether the shard completes, fails, or sheds it,
            # and carries the shard the router chose.
            nrhs = 0 if b is None else (1 if np.ndim(b) == 1 else np.shape(b)[1])
            self.recorder.record(
                kind, n, nrhs=nrhs, shard=target, tier=tier, tenant=tenant
            )
        hedge_target = self._hedge_target(tier, target)
        if hedge_target is not None:
            try:
                hedge_cf = self.shards[hedge_target].submit(
                    kind, a, b, tier=tier, tenant=tenant
                )
            except ShardDown:
                self._note_down(hedge_target)
            else:
                self.hedges["attempted"] += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.instant(
                        "hedge",
                        cat="serve",
                        tier=tier,
                        n=n,
                        primary=target,
                        hedge=hedge_target,
                    )
                return await self._race(
                    (target, cf), (hedge_target, hedge_cf), tier
                )
        try:
            return await asyncio.wrap_future(cf)
        except asyncio.CancelledError:
            if cf.cancelled():
                # The shard died and its loop cancelled the handoff —
                # translate so callers see shard death, not cancellation.
                self._note_down(target)
                raise ShardDown(f"shard {target} died mid-request") from None
            raise
        except ShardDown:
            self._note_down(target)
            raise
        except ServiceClosed:
            if shard.dead.is_set():
                # The shard was killed between handoff and coroutine start;
                # its broker reports closed, but the truth is shard death.
                self._note_down(target)
                raise ShardDown(f"shard {target} died mid-request") from None
            raise

    def _hedge_target(self, tier: str | None, primary: int) -> int | None:
        """The shard to race a hedged copy on, or ``None`` for no hedge.

        A hedge fires only when the request's tier carries a ``hedge_ms``
        budget, the primary shard's *observed* flush-service p99 (its own
        sketch, cumulative) already exceeds that budget, and another
        alive shard exists to race on.  The second shard is the next one
        on the alive ring, so repeated hedges of a struggling primary
        spread deterministically.
        """
        if self.admission is None or tier is None:
            return None
        budget_ms = self.admission.hedge_budget_ms(tier)
        if budget_ms is None:
            return None
        hist = self.shards[primary].broker.metrics.histograms.get(
            "flush_service_ms"
        )
        if hist is None or not hist.count or hist.percentile(99) <= budget_ms:
            return None
        alive = self.router.alive
        if primary in alive:
            start = alive.index(primary)
            ordered = alive[start + 1 :] + alive[:start]
        else:
            ordered = alive
        for candidate in ordered:
            if candidate != primary and not self.shards[candidate].dead.is_set():
                return candidate
        return None

    async def _race(self, primary, hedge, tier: str | None) -> np.ndarray:
        """Await two handoff futures; first success wins, loser cancelled.

        The cancelled copy keeps flowing through its shard's broker (its
        request future is shielded from the cancellation), so per-shard
        accounting stays conserved — the fabric merely stops listening.
        Shard-death errors mark the shard down exactly like the unhedged
        path; when *every* copy fails, the caller gets the primary's
        error if only shards died, else :class:`HedgeFailed`.
        """
        primary_id = primary[0]
        entries = {}
        for shard_id, cf in (primary, hedge):
            wrapper = asyncio.wrap_future(cf)
            entries[wrapper] = (shard_id, cf)
        pending = set(entries)
        errors: list[Exception] = []
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for wrapper in done:
                shard_id, cf = entries[wrapper]
                try:
                    result = wrapper.result()
                except asyncio.CancelledError:
                    self._note_down(shard_id)
                    errors.append(ShardDown(f"shard {shard_id} died mid-request"))
                except ShardDown as exc:
                    self._note_down(shard_id)
                    errors.append(exc)
                except ServiceClosed as exc:
                    if self.shards[shard_id].dead.is_set():
                        self._note_down(shard_id)
                        errors.append(
                            ShardDown(f"shard {shard_id} died mid-request")
                        )
                    else:
                        errors.append(exc)
                except Exception as exc:  # shed/numeric failure of one copy
                    errors.append(exc)
                else:
                    for loser in pending:
                        _, loser_cf = entries[loser]
                        loser_cf.cancel()
                    won = "won_primary" if shard_id == primary_id else "won_hedge"
                    self.hedges[won] += 1
                    tracer = self.tracer
                    if tracer.enabled:
                        tracer.instant(
                            "hedge_won",
                            cat="serve",
                            tier=tier,
                            winner=shard_id,
                            copy="primary" if shard_id == primary_id else "hedge",
                        )
                    return result
        shard_down = [e for e in errors if isinstance(e, ShardDown)]
        if len(shard_down) == len(errors):
            raise shard_down[0]
        raise HedgeFailed(
            f"every copy of the hedged {tier} request failed: "
            + "; ".join(f"{type(e).__name__}: {e}" for e in errors)
        ) from errors[0]

    def _place(self, kind, a, b, n: int, seq: int, tier=None, tenant=None):
        """Pick an alive shard for the request and hand it off.

        Retries placement when the chosen shard turns out to be dead at
        handoff time (its futures were never created, so a retry is safe);
        raises :class:`ShardDown` once no shards remain.
        """
        while True:
            target = self.router.place(n, seq)  # ShardDown when ring empty
            shard = self.shards[target]
            try:
                return (
                    target,
                    shard,
                    shard.submit(kind, a, b, tier=tier, tenant=tenant),
                )
            except ShardDown:
                self._note_down(target)

    def _note_down(self, shard_id: int) -> None:
        """Stop routing to a shard observed dead (idempotent)."""
        if shard_id in self.router.alive:
            self.router.mark_down(shard_id)
            tracer = self.tracer
            if tracer.enabled:
                tracer.instant("shard_down", cat="serve", shard=shard_id)

    def _check(self, kind, a, b) -> int:
        """The plain broker's input validation, minus the defensive copy.

        The shard's broker re-validates (and copies) on its own loop;
        checking here keeps errors synchronous and gives the router a
        trustworthy ``n`` without paying for the arrays twice.
        """
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        shape = np.shape(a)
        if len(shape) != 2 or shape[0] != shape[1] or shape[0] == 0:
            raise ValueError(f"expected one square (n, n) matrix, got shape {shape}")
        if kind == "solve":
            if b is None:
                raise ValueError("solve requests need a right-hand side")
            bshape = np.shape(b)
            if len(bshape) not in (1, 2) or bshape[0] != shape[0]:
                raise ValueError(
                    f"rhs shape {bshape} incompatible with matrix {shape}; "
                    "expected (n,) or (n, nrhs)"
                )
        elif b is not None:
            raise ValueError("factor requests take no right-hand side")
        return shape[0]

    def update_policy(self, policy: ServePolicy) -> ServePolicy:
        """Hot-swap the batching knobs across the whole fabric.

        Validates once at the fabric level (same
        :data:`~repro.serve.policy.HOT_KNOBS` contract as the plain
        broker), switches the router's placement immediately — atomic per
        request, see :meth:`~repro.serve.router.ShardRouter.set_placement`
        — and fans the new policy out to every live shard's loop via
        ``call_soon_threadsafe``, where each shard broker applies it at
        its own next coalesce boundary.  Shards therefore converge within
        one loop iteration each rather than in lockstep; dead shards are
        skipped.  Returns the fabric's previous policy.
        """
        old = self.policy
        old.validate_update(policy)
        self.policy = policy
        new_placement = policy.placement_name()
        if new_placement != self.router.placement:
            self.router.set_placement(new_placement)
            self.placement = new_placement
        for shard in self.shards.values():
            if shard.dead.is_set():
                continue
            with contextlib.suppress(RuntimeError):
                shard._loop.call_soon_threadsafe(
                    shard.broker.update_policy, policy
                )
        return old

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Kill one shard abruptly (see :meth:`BrokerShard.kill`).

        Only that shard's in-flight futures fail (:class:`ShardDown`);
        the router immediately stops placing work there, and the rest of
        the fabric keeps serving.  Raises :class:`ServeError` for an
        unknown shard id.
        """
        if shard_id not in self.shards:
            raise ServeError(f"no shard {shard_id} in this fabric")
        self._note_down(shard_id)
        self.shards[shard_id].kill()

    # ------------------------------------------------------------------
    # Metrics and telemetry
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests queued across all shards (racy snapshot, monitoring only)."""
        return sum(s.broker.batcher.pending for s in self.shards.values())

    def per_shard_metrics(self) -> dict[int, ServeMetrics]:
        """Each shard's own :class:`ServeMetrics`, keyed by shard id."""
        return {k: shard.broker.metrics for k, shard in self.shards.items()}

    @property
    def metrics(self) -> ServeMetrics:
        """The fabric-level snapshot: element-wise merge of every shard.

        Computed fresh on each access from the live per-shard objects —
        counters add exactly, histograms merge via
        :meth:`~repro.serve.metrics.Histogram.merge`.
        """
        return ServeMetrics.merged(
            self.shards[k].broker.metrics for k in sorted(self.shards)
        )

    def emit_snapshot(self) -> None:
        """Ask every live shard to emit one telemetry snapshot.

        Each shard samples on its own loop (its batcher is not
        thread-safe to read from here); dead shards are skipped.  Samples
        carry the shard tag via the shard brokers' tagged tracers.
        """
        for shard in self.shards.values():
            if shard.dead.is_set():
                continue
            with contextlib.suppress(RuntimeError):
                shard._loop.call_soon_threadsafe(shard.broker.emit_snapshot)


def make_broker(
    policy: ServePolicy | None = None,
    dispatcher: TunedDispatcher | None = None,
    executor=None,
    metrics: ServeMetrics | None = None,
    tracer=None,
    recorder=None,
    tiers=None,
):
    """A broker shaped by the policy: plain at one shard, fabric above.

    This is the seam every front end (``ServeClient``, trace replay, the
    CLI demo) goes through, so ``--shards``/``$REPRO_SERVE_SHARDS``
    reshape all of them at once.  A caller-injected ``executor`` or
    ``metrics`` object pins the single-broker shape regardless of the
    shard count — those objects are inherently single-broker (one backend
    instance, one counter set), and tests that inject them must keep
    meaning what they meant.

    ``tiers`` attaches the admission layer
    (:func:`~repro.serve.admission.make_admission` accepts ``None`` —
    consult ``$REPRO_SERVE_TIERS`` — a spec string, a
    :class:`~repro.serve.admission.TierPolicy`, or a ready controller).
    """
    policy = policy or ServePolicy()
    admission = make_admission(tiers)
    count = policy.shard_count()
    if count <= 1 or executor is not None or metrics is not None:
        return SolveBroker(
            policy=policy,
            dispatcher=dispatcher,
            executor=executor,
            metrics=metrics,
            tracer=tracer,
            recorder=recorder,
            admission=admission,
        )
    return ShardedBroker(
        policy=policy,
        dispatcher=dispatcher,
        tracer=tracer,
        recorder=recorder,
        shards=count,
        placement=policy.placement_name(),
        admission=admission,
    )
