"""Executor backends: how one dense flushed batch actually runs.

The broker and :class:`~repro.serve.executor.BatchExecutor` own everything
request-shaped about a flush — packing same-size requests into a dense
``(batch, n, n)`` block, the LAPACK-style ``info`` diagnosis, solo
retries, solves, and scattering per-request outcomes.  The one step that
is genuinely backend-specific is "run this dense block with this tuned
configuration", and that step is this module's :class:`ExecutorBackend`
seam.  Four backends implement it:

``inline``
    The seed behaviour: factorize with the generated NumPy kernels in the
    calling thread.  Service time is host wall clock.

``process``
    Ship the dense block to a ``concurrent.futures``
    ``ProcessPoolExecutor`` worker, so flush compute escapes the GIL and
    the broker's event loop keeps ticking deadlines while a bucket
    factorizes.  Worker death and per-flush timeouts become
    :class:`BackendError` (which the broker scatters to only that
    bucket's futures); the broken pool is disposed and, by default, the
    flush is retried once on a fresh worker first.

``eventsim``
    Wrap any inner backend (inline by default) and charge each flush the
    latency predicted by :func:`repro.gpusim.eventsim.simulate_launch`
    for the tuned configuration, so trace replays report modeled GPU-time
    service latency instead of host-NumPy latency.

``shadow``
    Mirror a configurable fraction of flushes through the LAPACK
    reference (:mod:`repro.baselines.lapack`), compare factors within
    tolerance, and surface disagreements through the ``shadow_mismatch``
    metric — user futures still resolve from the primary factors.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.gpusim.arch import GPUArchitecture, P100
from repro.serve.policy import ServeError

#: Environment variable consulted when no backend is named explicitly —
#: the CI matrix sets it to run the serve suite once per backend.
BACKEND_ENV = "REPRO_SERVE_BACKEND"

#: Backend names accepted by :func:`make_backend`, the CLI, and the
#: environment variable.
BACKEND_NAMES = ("inline", "process", "eventsim", "shadow")


class BackendError(ServeError):
    """A backend failed to run a flush (worker death, flush timeout, ...)."""


@dataclass
class BackendRun:
    """What one backend invocation produced.

    ``seconds`` is the service time the backend *charges* for the run —
    wall clock for the host backends, modeled GPU time for ``eventsim``
    (which also supplies its own ``gflops``; ``None`` defers to the
    analytic model).  The shadow counters report how many matrices were
    mirrored through the LAPACK reference and how many disagreed.
    """

    factors: np.ndarray
    seconds: float | None = None
    gflops: float | None = None
    shadow_checked: int = 0
    shadow_mismatch: int = 0


def _dense_cholesky(a: np.ndarray, config: KernelConfig) -> np.ndarray:
    # Branch-free kernels turn non-SPD pivots into NaNs rather than
    # raising; silence the IEEE warnings and let ``info`` diagnose.
    with np.errstate(invalid="ignore", divide="ignore"):
        return batch_cholesky(a, config)


class ExecutorBackend:
    """Runs one dense ``(batch, n, n)`` block with one tuned configuration.

    Subclasses implement :meth:`factorize`; :meth:`warmup` and
    :meth:`close` have do-little defaults so simple backends stay simple.
    """

    name = "abstract"

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        raise NotImplementedError

    def warmup(self, config: KernelConfig) -> None:
        """Pre-compile the kernel for ``config`` wherever flushes will run."""
        from repro.codegen.compile import compiled_kernel

        compiled_kernel(config)

    def close(self) -> None:
        """Release whatever the backend holds (pools, wrapped backends)."""


class InlineBackend(ExecutorBackend):
    """Factorize in the calling thread with the generated NumPy kernels."""

    name = "inline"

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        started = time.perf_counter()
        factors = _dense_cholesky(a, config)
        return BackendRun(factors=factors, seconds=time.perf_counter() - started)


def _process_worker(a: np.ndarray, config: KernelConfig) -> np.ndarray:
    """Top-level worker entry point (must be picklable by reference)."""
    return _dense_cholesky(a, config)


class ProcessPoolBackend(ExecutorBackend):
    """Run flushes in worker processes so compute escapes the GIL.

    The pool is created lazily (and re-created after a failure) from a
    ``forkserver`` context where available — forking from the clean
    forkserver process is safe even though the broker's process is
    multi-threaded.  A flush that outlives ``flush_timeout_s`` or whose
    worker dies raises :class:`BackendError`; the broken pool is disposed
    so the *next* flush starts clean, and with ``retry_fresh_worker`` the
    failing flush itself is retried once on a fresh worker first.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        flush_timeout_s: float | None = 30.0,
        retry_fresh_worker: bool = True,
        mp_context=None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if flush_timeout_s is not None and flush_timeout_s <= 0:
            raise ValueError(
                f"flush_timeout_s must be positive or None, got {flush_timeout_s}"
            )
        self.workers = workers
        self.flush_timeout_s = flush_timeout_s
        self.retry_fresh_worker = retry_fresh_worker
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        try:
            return multiprocessing.get_context("forkserver")
        except ValueError:  # platform without forkserver
            return multiprocessing.get_context("spawn")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context()
            )
        return self._pool

    def _dispose_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # A hung worker would block an orderly shutdown forever, so
        # terminate whatever is still alive before abandoning the pool.
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            if proc.is_alive():
                proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _attempt(self, a: np.ndarray, config: KernelConfig) -> np.ndarray:
        future = None
        try:
            # submit() itself raises BrokenExecutor when a worker already
            # died, so it sits inside the same conversion path.
            future = self._ensure_pool().submit(_process_worker, a, config)
            return future.result(timeout=self.flush_timeout_s)
        except FutureTimeoutError:
            if future is not None:
                future.cancel()
            self._dispose_pool()
            raise BackendError(
                f"flush (batch={len(a)}, n={config.n}) timed out after "
                f"{self.flush_timeout_s}s in a worker process"
            ) from None
        except BrokenExecutor as exc:
            self._dispose_pool()
            # The flight recorder (repro.obs.slo) dumps its ring buffer
            # on this instant: a dead worker is exactly the kind of
            # incident whose preceding telemetry a postmortem needs.
            from repro.obs.tracer import get_tracer

            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "worker_death",
                    cat="serve",
                    batch=len(a),
                    n=config.n,
                    error=str(exc),
                )
            raise BackendError(f"worker process died mid-flush: {exc}") from exc

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        started = time.perf_counter()
        try:
            factors = self._attempt(a, config)
        except BackendError:
            if not self.retry_fresh_worker:
                raise
            # _attempt disposed the broken pool; this retry builds a
            # fresh one.  A second failure is the request's problem.
            factors = self._attempt(a, config)
        return BackendRun(factors=factors, seconds=time.perf_counter() - started)

    def warmup(self, config: KernelConfig) -> None:
        """Compile ``config``'s kernel in every worker, one tiny batch each."""
        pool = self._ensure_pool()
        probe = np.eye(config.n, dtype=config.np_dtype())[None]
        futures = [
            pool.submit(_process_worker, probe, config) for _ in range(self.workers)
        ]
        for future in futures:
            future.result(timeout=self.flush_timeout_s)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


class EventSimBackend(ExecutorBackend):
    """Charge flushes the latency the event-driven GPU simulator predicts.

    Factors come from the wrapped ``inner`` backend (inline by default);
    timing comes from :func:`repro.gpusim.eventsim.simulate_launch` for
    the tuned configuration and the flushed batch size.  Replaying a
    trace through this backend therefore reports the service latency the
    modeled GPU would deliver, not the host-NumPy stand-in's.
    """

    name = "eventsim"

    def __init__(
        self,
        inner: ExecutorBackend | None = None,
        arch: GPUArchitecture = P100,
    ) -> None:
        self.inner = inner if inner is not None else InlineBackend()
        self.arch = arch
        self._sim_cache: dict[tuple, tuple[float, float]] = {}

    def _modeled(self, config: KernelConfig, batch: int) -> tuple[float, float]:
        key = (config, batch)
        if key not in self._sim_cache:
            from repro.gpusim.eventsim import simulate_launch

            sim = simulate_launch(config, batch=batch, arch=self.arch)
            self._sim_cache[key] = (sim.seconds, sim.gflops)
        return self._sim_cache[key]

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        run = self.inner.factorize(a, config)
        seconds, gflops = self._modeled(config, len(a))
        return BackendRun(
            factors=run.factors,
            seconds=seconds,
            gflops=gflops,
            shadow_checked=run.shadow_checked,
            shadow_mismatch=run.shadow_mismatch,
        )

    def warmup(self, config: KernelConfig) -> None:
        self.inner.warmup(config)

    def close(self) -> None:
        self.inner.close()


class ShadowLapackBackend(ExecutorBackend):
    """Mirror a fraction of flushes through the LAPACK reference.

    Primary factors come from the wrapped ``inner`` backend and are what
    user futures resolve from; on the mirrored flushes every matrix is
    re-factorized with :mod:`repro.baselines.lapack` and compared within
    ``tolerance``.  Disagreements — a matrix the kernel factorized but
    LAPACK rejected (or vice versa), or factors further apart than the
    tolerance — are *counted*, not raised: they surface through the
    ``shadow_mismatch`` metric so operators can alarm on silent numeric
    drift without failing user traffic.

    ``fraction`` is applied with a deterministic credit accumulator
    (fraction 0.25 mirrors every fourth flush), which keeps replays and
    tests reproducible.
    """

    name = "shadow"

    def __init__(
        self,
        inner: ExecutorBackend | None = None,
        fraction: float = 1.0,
        tolerance: float = 1e-3,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.inner = inner if inner is not None else InlineBackend()
        self.fraction = fraction
        self.tolerance = tolerance
        self._credit = 0.0

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        run = self.inner.factorize(a, config)
        self._credit += self.fraction
        if self._credit >= 1.0:
            self._credit -= 1.0
            run.shadow_checked += len(a)
            run.shadow_mismatch += self._mismatches(a, run.factors)
        return run

    def _mismatches(self, a: np.ndarray, factors: np.ndarray) -> int:
        from scipy.linalg import LinAlgError

        from repro.baselines.lapack import lapack_cholesky_batch

        mismatches = 0
        for i in range(len(a)):
            lower = np.tril(np.asarray(factors[i], dtype=np.float64))
            kernel_ok = bool(np.isfinite(lower).all())
            try:
                ref = lapack_cholesky_batch(
                    np.asarray(a[i], dtype=np.float64)[None]
                )[0]
            except LinAlgError:
                ref = None
            if kernel_ok != (ref is not None):
                mismatches += 1
                continue
            if ref is None:
                continue  # both sides agree the matrix is not SPD
            drift = np.max(np.abs(lower - ref) / (1.0 + np.abs(ref)))
            if drift > self.tolerance:
                mismatches += 1
        return mismatches

    def warmup(self, config: KernelConfig) -> None:
        self.inner.warmup(config)

    def close(self) -> None:
        self.inner.close()


def make_backend(
    spec: "str | ExecutorBackend | None" = None,
    *,
    workers: int = 2,
    flush_timeout_s: float | None = 30.0,
    shadow_fraction: float = 1.0,
    shadow_tolerance: float = 1e-3,
    arch: GPUArchitecture = P100,
) -> ExecutorBackend:
    """Build an executor backend from a name (or pass one through).

    ``spec`` may be an :class:`ExecutorBackend` instance (returned as
    is), one of :data:`BACKEND_NAMES`, or ``None`` — which consults the
    ``REPRO_SERVE_BACKEND`` environment variable and falls back to
    ``inline``.
    """
    if isinstance(spec, ExecutorBackend):
        return spec
    name = spec or os.environ.get(BACKEND_ENV) or "inline"
    if name == "inline":
        return InlineBackend()
    if name == "process":
        return ProcessPoolBackend(workers=workers, flush_timeout_s=flush_timeout_s)
    if name == "eventsim":
        return EventSimBackend(arch=arch)
    if name == "shadow":
        return ShadowLapackBackend(
            fraction=shadow_fraction, tolerance=shadow_tolerance
        )
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


def backend_from_policy(policy) -> ExecutorBackend:
    """The backend a :class:`~repro.serve.policy.ServePolicy` asks for."""
    return make_backend(
        policy.backend,
        workers=policy.process_workers,
        flush_timeout_s=policy.flush_timeout_s,
        shadow_fraction=policy.shadow_fraction,
        shadow_tolerance=policy.shadow_tolerance,
    )
