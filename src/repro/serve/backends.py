"""Executor backends: how one dense flushed batch actually runs.

The broker and :class:`~repro.serve.executor.BatchExecutor` own everything
request-shaped about a flush — packing same-size requests into a dense
``(batch, n, n)`` block, the LAPACK-style ``info`` diagnosis, solo
retries, solves, and scattering per-request outcomes.  The one step that
is genuinely backend-specific is "run this dense block with this tuned
configuration", and that step is this module's :class:`ExecutorBackend`
seam.  Four backends implement it:

``inline``
    The seed behaviour: factorize with the generated NumPy kernels in the
    calling thread.  Service time is host wall clock.

``process``
    Ship the dense block to a ``concurrent.futures``
    ``ProcessPoolExecutor`` worker, so flush compute escapes the GIL and
    the broker's event loop keeps ticking deadlines while a bucket
    factorizes.  Worker death and per-flush timeouts become
    :class:`BackendError` (which the broker scatters to only that
    bucket's futures); the broken pool is disposed and, by default, the
    flush is retried once on a fresh worker first.

``eventsim``
    Wrap any inner backend (inline by default) and charge each flush the
    latency predicted by :func:`repro.gpusim.eventsim.simulate_launch`
    for the tuned configuration, so trace replays report modeled GPU-time
    service latency instead of host-NumPy latency.

``shadow``
    Mirror a configurable fraction of flushes through the LAPACK
    reference (:mod:`repro.baselines.lapack`), compare factors within
    tolerance, and surface disagreements through the ``shadow_mismatch``
    metric — user futures still resolve from the primary factors.

``arena-process``
    The process pool plus the zero-copy data plane
    (:mod:`repro.serve.arena`): batches are staged into shared-memory
    arenas at enqueue time, and a flush ships the worker an offsets
    handle instead of pickled bytes.  Workers attach once per pool
    lifetime (via the pool initializer) and write factors back in
    place.  Requests that could not be staged (arena disabled, shared
    memory unavailable) fall back to the pickle path and are accounted
    as ``bytes_copied_fallback``.

Tuned configurations are *registered* with the pool rather than
re-pickled per flush: the pool initializer ships the id → config table
to every worker once, and each submit carries only a small config id
(plus the config itself the first times a config not yet baked into the
pool appears — see :meth:`ProcessPoolBackend._register_config`).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.gpusim.arch import GPUArchitecture, P100
from repro.serve.policy import ServeError

#: Environment variable consulted when no backend is named explicitly —
#: the CI matrix sets it to run the serve suite once per backend.
BACKEND_ENV = "REPRO_SERVE_BACKEND"

#: Backend names accepted by :func:`make_backend`, the CLI, and the
#: environment variable.
BACKEND_NAMES = ("inline", "process", "eventsim", "shadow", "arena-process")


class BackendError(ServeError):
    """A backend failed to run a flush (worker death, flush timeout, ...)."""


@dataclass
class BackendRun:
    """What one backend invocation produced.

    ``seconds`` is the service time the backend *charges* for the run —
    wall clock for the host backends, modeled GPU time for ``eventsim``
    (which also supplies its own ``gflops``; ``None`` defers to the
    analytic model).  The shadow counters report how many matrices were
    mirrored through the LAPACK reference and how many disagreed.

    ``bytes_copied`` is the flush-payload copy bill: bytes the run moved
    by materialize/pickle (the stacked dense block inline, block out +
    factors back for the process pool) rather than through the
    shared-memory data plane.  Staged arena runs charge 0 — the whole
    point — and the broker accounts whatever is charged as
    ``bytes_copied_fallback``.
    """

    factors: np.ndarray
    seconds: float | None = None
    gflops: float | None = None
    shadow_checked: int = 0
    shadow_mismatch: int = 0
    bytes_copied: int = 0


def _dense_cholesky(a: np.ndarray, config: KernelConfig) -> np.ndarray:
    # Branch-free kernels turn non-SPD pivots into NaNs rather than
    # raising; silence the IEEE warnings and let ``info`` diagnose.
    with np.errstate(invalid="ignore", divide="ignore"):
        return batch_cholesky(a, config)


class ExecutorBackend:
    """Runs one dense ``(batch, n, n)`` block with one tuned configuration.

    Subclasses implement :meth:`factorize`; :meth:`warmup` and
    :meth:`close` have do-little defaults so simple backends stay simple.
    """

    name = "abstract"

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        raise NotImplementedError

    def warmup(self, config: KernelConfig) -> None:
        """Pre-compile the kernel for ``config`` wherever flushes will run."""
        from repro.codegen.compile import compiled_kernel

        compiled_kernel(config)

    def close(self) -> None:
        """Release whatever the backend holds (pools, wrapped backends)."""


class InlineBackend(ExecutorBackend):
    """Factorize in the calling thread with the generated NumPy kernels."""

    name = "inline"

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        started = time.perf_counter()
        factors = _dense_cholesky(a, config)
        return BackendRun(
            factors=factors,
            seconds=time.perf_counter() - started,
            bytes_copied=int(a.nbytes),
        )


#: Worker-process config registry, filled by :func:`_pool_initializer`
#: at pool start and grown by :func:`_resolve_config` for configs first
#: seen after the pool was built.
_WORKER_CONFIGS: dict[int, KernelConfig] = {}


def _pool_initializer(configs: dict, arena_segments: tuple = ()) -> None:
    """Runs once per worker: install static per-run state.

    ``configs`` is the parent's id → :class:`KernelConfig` table at pool
    creation; per-flush submits then carry only the id.  For the arena
    backend, ``arena_segments`` names the shared-memory slabs alive at
    pool creation so workers attach exactly once per pool lifetime
    (slabs grown later attach lazily on first use).
    """
    _WORKER_CONFIGS.update(configs)
    from repro.serve import arena as arena_mod

    for name in arena_segments:
        try:
            arena_mod.worker_attach(name)
        except FileNotFoundError:  # pragma: no cover - slab died first
            pass


def _resolve_config(cid: int, config: KernelConfig | None) -> KernelConfig:
    if config is not None:
        return _WORKER_CONFIGS.setdefault(cid, config)
    try:
        return _WORKER_CONFIGS[cid]
    except KeyError:
        raise RuntimeError(
            f"config id {cid} not registered in this worker"
        ) from None


def _process_worker(
    a: np.ndarray, cid: int = -1, config: KernelConfig | None = None
) -> np.ndarray:
    """Top-level worker entry point (must be picklable by reference)."""
    if cid < 0:  # direct call with an explicit config (tests, fallback)
        return _dense_cholesky(a, config)
    return _dense_cholesky(a, _resolve_config(cid, config))


def _arena_worker(handle: tuple, cid: int, config: KernelConfig | None) -> int:
    """Staged flush: gather from shared memory, factorize, write back.

    Returns the batch size — the factors travel back through the arena,
    not the pickle channel, so the future's payload stays tiny.
    """
    from repro.serve import arena as arena_mod

    dense = arena_mod.worker_gather(handle)
    factors = _dense_cholesky(dense, _resolve_config(cid, config))
    arena_mod.worker_write_back(handle, factors)
    return len(dense)


class ProcessPoolBackend(ExecutorBackend):
    """Run flushes in worker processes so compute escapes the GIL.

    The pool is created lazily (and re-created after a failure) from a
    ``forkserver`` context where available — forking from the clean
    forkserver process is safe even though the broker's process is
    multi-threaded.  A flush that outlives ``flush_timeout_s`` or whose
    worker dies raises :class:`BackendError`; the broken pool is disposed
    so the *next* flush starts clean, and with ``retry_fresh_worker`` the
    failing flush itself is retried once on a fresh worker first.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        flush_timeout_s: float | None = 30.0,
        retry_fresh_worker: bool = True,
        mp_context=None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if flush_timeout_s is not None and flush_timeout_s <= 0:
            raise ValueError(
                f"flush_timeout_s must be positive or None, got {flush_timeout_s}"
            )
        self.workers = workers
        self.flush_timeout_s = flush_timeout_s
        self.retry_fresh_worker = retry_fresh_worker
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._configs: dict[KernelConfig, int] = {}
        self._pool_config_ids: frozenset[int] = frozenset()
        # Flushes of different buckets can run concurrently on the
        # broker's executor threads; pool creation and the config
        # registry must agree on what the pool initializer actually
        # shipped, so both mutate under one lock.
        self._registry_lock = threading.Lock()

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        try:
            return multiprocessing.get_context("forkserver")
        except ValueError:  # platform without forkserver
            return multiprocessing.get_context("spawn")

    def _initargs(self) -> tuple:
        table = {cid: config for config, cid in self._configs.items()}
        return (table, ())

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._registry_lock:
            if self._pool is None:
                # _pool_config_ids must come from the *same snapshot*
                # the initializer ships: a config registered by a
                # concurrent flush between the two would otherwise be
                # promoted to carry-nothing without any worker having
                # it.
                initargs = self._initargs()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._context(),
                    initializer=_pool_initializer,
                    initargs=initargs,
                )
                self._pool_config_ids = frozenset(initargs[0].keys())
            return self._pool

    def _register_config(
        self, config: KernelConfig
    ) -> tuple[int, KernelConfig | None]:
        """Id for ``config`` plus what a submit must carry alongside it.

        ``None`` when every worker already has the config (it was in the
        pool initializer); the config itself otherwise — a late-seen
        config must travel until a pool rebuild bakes it in, because
        only the initializer reaches *all* workers.  :meth:`warmup`
        registers before the pool exists, which is why warmed steady
        state pickles nothing but the batch handle per flush.
        """
        with self._registry_lock:
            cid = self._configs.get(config)
            if cid is None:
                cid = len(self._configs)
                self._configs[config] = cid
            if self._pool is not None and cid in self._pool_config_ids:
                return cid, None
            return cid, config

    def _dispose_pool(self) -> None:
        with self._registry_lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        # A hung worker would block an orderly shutdown forever, so
        # terminate whatever is still alive before abandoning the pool.
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            if proc.is_alive():
                proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _attempt(self, a: np.ndarray, config: KernelConfig) -> np.ndarray:
        future = None
        try:
            # submit() itself raises BrokenExecutor when a worker already
            # died, so it sits inside the same conversion path.
            pool = self._ensure_pool()
            cid, carry = self._register_config(config)
            future = pool.submit(_process_worker, a, cid, carry)
            return future.result(timeout=self.flush_timeout_s)
        except FutureTimeoutError:
            if future is not None:
                future.cancel()
            self._dispose_pool()
            raise BackendError(
                f"flush (batch={len(a)}, n={config.n}) timed out after "
                f"{self.flush_timeout_s}s in a worker process"
            ) from None
        except BrokenExecutor as exc:
            self._dispose_pool()
            # The flight recorder (repro.obs.slo) dumps its ring buffer
            # on this instant: a dead worker is exactly the kind of
            # incident whose preceding telemetry a postmortem needs.
            from repro.obs.tracer import get_tracer

            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "worker_death",
                    cat="serve",
                    batch=len(a),
                    n=config.n,
                    error=str(exc),
                )
            raise BackendError(f"worker process died mid-flush: {exc}") from exc

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        started = time.perf_counter()
        try:
            factors = self._attempt(a, config)
        except BackendError:
            if not self.retry_fresh_worker:
                raise
            # _attempt disposed the broken pool; this retry builds a
            # fresh one.  A second failure is the request's problem.
            factors = self._attempt(a, config)
        return BackendRun(
            factors=factors,
            seconds=time.perf_counter() - started,
            # Pickle bill: dense block out plus factors back.
            bytes_copied=2 * int(a.nbytes),
        )

    def warmup(self, config: KernelConfig) -> None:
        """Compile ``config``'s kernel in every worker, one tiny batch each.

        Registering before the pool exists bakes the config into the
        pool initializer, so warmed steady-state flushes pickle only
        their batch payload (or, staged, only an offsets handle).
        """
        cid = self._configs.get(config)
        if cid is None:
            self._configs[config] = len(self._configs)
        pool = self._ensure_pool()
        cid, carry = self._register_config(config)
        probe = np.eye(config.n, dtype=config.np_dtype())[None]
        futures = [
            pool.submit(_process_worker, probe, cid, carry)
            for _ in range(self.workers)
        ]
        for future in futures:
            future.result(timeout=self.flush_timeout_s)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


class ArenaProcessBackend(ProcessPoolBackend):
    """Process pool fed through shared-memory arenas instead of pickles.

    Owns an :class:`~repro.serve.arena.ArenaPool` (``self.arenas``) —
    the presence of that attribute is how the batcher and executor
    discover that staging is available.  Staged flushes ship an offsets
    handle; the dense pickle path inherited from
    :class:`ProcessPoolBackend` remains the fallback for solo retries
    and for requests that could not be staged, charged as
    ``bytes_copied``.  Worker death bumps every staged slot's generation
    and re-stages from host copies before the fresh-pool retry, so a
    retried flush can never read torn bytes.
    """

    name = "arena-process"

    def __init__(
        self,
        workers: int = 2,
        flush_timeout_s: float | None = 30.0,
        retry_fresh_worker: bool = True,
        mp_context=None,
        slab_slots: int | None = None,
    ) -> None:
        super().__init__(
            workers=workers,
            flush_timeout_s=flush_timeout_s,
            retry_fresh_worker=retry_fresh_worker,
            mp_context=mp_context,
        )
        from repro.serve.arena import DEFAULT_SLAB_SLOTS, ArenaPool

        self.arenas = ArenaPool(slab_slots=slab_slots or DEFAULT_SLAB_SLOTS)

    def _initargs(self) -> tuple:
        table, _ = super()._initargs()
        return (table, tuple(self.arenas.segment_names()))

    def _staged_attempt(self, handle: tuple, config: KernelConfig) -> None:
        from repro.serve.arena import ArenaError

        future = None
        try:
            pool = self._ensure_pool()
            cid, carry = self._register_config(config)
            future = pool.submit(_arena_worker, handle, cid, carry)
            future.result(timeout=self.flush_timeout_s)
        except FutureTimeoutError:
            if future is not None:
                future.cancel()
            self._dispose_pool()
            raise BackendError(
                f"staged flush ({len(handle[3])} slots, n={config.n}) timed "
                f"out after {self.flush_timeout_s}s in a worker process"
            ) from None
        except ArenaError as exc:
            # A stale-generation check fired in the worker: the slots
            # moved under it.  The pool itself is healthy; re-stage and
            # retry like any other backend failure.
            raise BackendError(f"staged flush lost its slots: {exc}") from exc
        except BrokenExecutor as exc:
            self._dispose_pool()
            from repro.obs.tracer import get_tracer

            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "worker_death",
                    cat="serve",
                    batch=len(handle[3]),
                    n=config.n,
                    staged=True,
                    error=str(exc),
                )
            raise BackendError(
                f"worker process died mid-staged-flush: {exc}"
            ) from exc

    def factorize_staged(self, staged, config: KernelConfig) -> BackendRun:
        """Run one fully staged flush; factors come back through the arena."""
        started = time.perf_counter()
        try:
            self._staged_attempt(self.arenas.describe(staged), config)
        except BackendError:
            if not self.retry_fresh_worker:
                raise
            # Generation-bump + rewrite from host copies: the dead
            # worker may have left torn factors in the slots, and a
            # half-dead straggler must not clobber the retry.
            self.arenas.restage(staged)
            self._staged_attempt(self.arenas.describe(staged), config)
        factors = self.arenas.gather(staged)
        return BackendRun(
            factors=factors,
            seconds=time.perf_counter() - started,
            bytes_copied=0,
        )

    def close(self) -> None:
        super().close()
        self.arenas.close()


class EventSimBackend(ExecutorBackend):
    """Charge flushes the latency the event-driven GPU simulator predicts.

    Factors come from the wrapped ``inner`` backend (inline by default);
    timing comes from :func:`repro.gpusim.eventsim.simulate_launch` for
    the tuned configuration and the flushed batch size.  Replaying a
    trace through this backend therefore reports the service latency the
    modeled GPU would deliver, not the host-NumPy stand-in's.
    """

    name = "eventsim"

    def __init__(
        self,
        inner: ExecutorBackend | None = None,
        arch: GPUArchitecture = P100,
    ) -> None:
        self.inner = inner if inner is not None else InlineBackend()
        self.arch = arch
        self._sim_cache: dict[tuple, tuple[float, float]] = {}

    def _modeled(self, config: KernelConfig, batch: int) -> tuple[float, float]:
        key = (config, batch)
        if key not in self._sim_cache:
            from repro.gpusim.eventsim import simulate_launch

            sim = simulate_launch(config, batch=batch, arch=self.arch)
            self._sim_cache[key] = (sim.seconds, sim.gflops)
        return self._sim_cache[key]

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        run = self.inner.factorize(a, config)
        seconds, gflops = self._modeled(config, len(a))
        return BackendRun(
            factors=run.factors,
            seconds=seconds,
            gflops=gflops,
            shadow_checked=run.shadow_checked,
            shadow_mismatch=run.shadow_mismatch,
            bytes_copied=run.bytes_copied,
        )

    def warmup(self, config: KernelConfig) -> None:
        self.inner.warmup(config)

    def close(self) -> None:
        self.inner.close()


class ShadowLapackBackend(ExecutorBackend):
    """Mirror a fraction of flushes through the LAPACK reference.

    Primary factors come from the wrapped ``inner`` backend and are what
    user futures resolve from; on the mirrored flushes every matrix is
    re-factorized with :mod:`repro.baselines.lapack` and compared within
    ``tolerance``.  Disagreements — a matrix the kernel factorized but
    LAPACK rejected (or vice versa), or factors further apart than the
    tolerance — are *counted*, not raised: they surface through the
    ``shadow_mismatch`` metric so operators can alarm on silent numeric
    drift without failing user traffic.

    ``fraction`` is applied with a deterministic credit accumulator
    (fraction 0.25 mirrors every fourth flush), which keeps replays and
    tests reproducible.
    """

    name = "shadow"

    def __init__(
        self,
        inner: ExecutorBackend | None = None,
        fraction: float = 1.0,
        tolerance: float = 1e-3,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.inner = inner if inner is not None else InlineBackend()
        self.fraction = fraction
        self.tolerance = tolerance
        self._credit = 0.0

    def factorize(self, a: np.ndarray, config: KernelConfig) -> BackendRun:
        run = self.inner.factorize(a, config)
        self._credit += self.fraction
        if self._credit >= 1.0:
            self._credit -= 1.0
            run.shadow_checked += len(a)
            run.shadow_mismatch += self._mismatches(a, run.factors)
        return run

    def _mismatches(self, a: np.ndarray, factors: np.ndarray) -> int:
        from scipy.linalg import LinAlgError

        from repro.baselines.lapack import lapack_cholesky_batch

        mismatches = 0
        for i in range(len(a)):
            lower = np.tril(np.asarray(factors[i], dtype=np.float64))
            kernel_ok = bool(np.isfinite(lower).all())
            try:
                ref = lapack_cholesky_batch(
                    np.asarray(a[i], dtype=np.float64)[None]
                )[0]
            except LinAlgError:
                ref = None
            if kernel_ok != (ref is not None):
                mismatches += 1
                continue
            if ref is None:
                continue  # both sides agree the matrix is not SPD
            drift = np.max(np.abs(lower - ref) / (1.0 + np.abs(ref)))
            if drift > self.tolerance:
                mismatches += 1
        return mismatches

    def warmup(self, config: KernelConfig) -> None:
        self.inner.warmup(config)

    def close(self) -> None:
        self.inner.close()


def make_backend(
    spec: "str | ExecutorBackend | None" = None,
    *,
    workers: int = 2,
    flush_timeout_s: float | None = 30.0,
    shadow_fraction: float = 1.0,
    shadow_tolerance: float = 1e-3,
    arch: GPUArchitecture = P100,
) -> ExecutorBackend:
    """Build an executor backend from a name (or pass one through).

    ``spec`` may be an :class:`ExecutorBackend` instance (returned as
    is), one of :data:`BACKEND_NAMES`, or ``None`` — which consults the
    ``REPRO_SERVE_BACKEND`` environment variable and falls back to
    ``inline``.  With no explicit spec or backend variable, a truthy
    ``$REPRO_SERVE_ARENA`` selects ``arena-process`` — how the CI
    matrix turns the data plane on without touching policy files.
    """
    if isinstance(spec, ExecutorBackend):
        return spec
    name = spec or os.environ.get(BACKEND_ENV)
    if name is None or name == "":
        from repro.serve.arena import arena_requested

        name = "arena-process" if arena_requested() else "inline"
    if name == "inline":
        return InlineBackend()
    if name == "process":
        return ProcessPoolBackend(workers=workers, flush_timeout_s=flush_timeout_s)
    if name == "arena-process":
        return ArenaProcessBackend(
            workers=workers, flush_timeout_s=flush_timeout_s
        )
    if name == "eventsim":
        return EventSimBackend(arch=arch)
    if name == "shadow":
        return ShadowLapackBackend(
            fraction=shadow_fraction, tolerance=shadow_tolerance
        )
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


def backend_from_policy(policy) -> ExecutorBackend:
    """The backend a :class:`~repro.serve.policy.ServePolicy` asks for."""
    return make_backend(
        policy.backend,
        workers=policy.process_workers,
        flush_timeout_s=policy.flush_timeout_s,
        shadow_fraction=policy.shadow_fraction,
        shadow_tolerance=policy.shadow_tolerance,
    )
