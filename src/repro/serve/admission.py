"""SLA tiers, cost-based admission control, and multi-tenant fairness.

Millions of users means not all requests are equal.  This module is the
policy brain between :meth:`~repro.serve.broker.SolveBroker.submit` and
the batcher:

* **Tiers** — every request carries a ``tier`` (:data:`TIERS`:
  ``gold``/``silver``/``best_effort``) and a ``tenant`` id.  A
  :class:`TierSpec` gives each tier a weight (fair-queue share), an
  optional per-tier coalesce deadline, an optional per-tenant
  token-bucket quota, and — for premium tiers — a hedge trigger.

* **Cost-based shedding** — under backpressure the broker sheds the
  *cheapest, lowest-tier* queued work first instead of FIFO-rejecting
  the arrival.  "Cheapest" comes from the tuned dispatch model: the
  paper's autotuned per-size throughput gives an honest modelled cost
  per matrix (:meth:`AdmissionController.cost`), so dropping ten n=8
  best-effort requests is preferred over one n=64 — and a gold request
  is never the victim while sheddable lower-tier work remains queued.

* **Weighted fair queuing** — admission stamps each request with a
  start-time-fair-queuing virtual finish time
  (``vft = max(tenant_vt, global_vt) + cost / weight``); flush
  selection drains requests in ascending ``vft``, so tenants inside one
  size bucket are served proportionally to their tier weights and a hot
  tenant cannot starve the rest.  :func:`jain_index` is the fairness
  measure the replay gate applies to per-tenant completions.

* **Hedging** — a tier with ``hedge_ms`` set (gold, by default) may
  submit a second copy to another shard when the primary shard's recent
  ``flush_service_ms`` p99 exceeds the budget; first completion wins and
  the loser is cancelled (:class:`~repro.serve.shard.ShardedBroker`).

The controller itself is deterministic given its injected clock and
thread-safe (one lock), so one instance can serve a whole sharded
fabric.  ``$REPRO_SERVE_TIERS`` attaches a controller to every serve
front end, mirroring ``$REPRO_SERVE_CONTROLLER`` and
``$REPRO_SERVE_SLO``; see ``docs/tiers.md``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace

from repro.serve.policy import QuotaExceeded

#: Tier names in priority order (most important first).
TIERS = ("gold", "silver", "best_effort")

#: Shed order: least important first — the fabric's sacrifice list.
SHED_ORDER = ("best_effort", "silver", "gold")

#: Tier assigned to requests that don't name one.
DEFAULT_TIER = "silver"

#: Tenant assigned to requests that don't name one.
DEFAULT_TENANT = "default"

#: Environment knob: ``$REPRO_SERVE_TIERS`` attaches an
#: :class:`AdmissionController` to every serve front end.  ``1``/``on``
#: uses :func:`default_tier_policy`; any other non-empty value is parsed
#: as a :meth:`TierPolicy.parse` spec.
TIERS_ENV = "REPRO_SERVE_TIERS"


def shed_rank(tier: str) -> int:
    """Position of ``tier`` in the sacrifice list (lower sheds first)."""
    try:
        return SHED_ORDER.index(tier)
    except ValueError:
        raise ValueError(f"unknown tier {tier!r} (expected one of {TIERS})")


def jain_index(values) -> float:
    """Jain's fairness index ``(Σx)² / (N·Σx²)`` over ``values``.

    1.0 means perfectly even allocation; ``1/N`` means one party got
    everything.  Trivial inputs (empty, or all zero) read as fair.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    square_sum = sum(x * x for x in xs)
    if square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


@dataclass(frozen=True)
class TierSpec:
    """One tier's SLA contract.

    ``weight`` is the tier's fair-queue share (per unit of modelled
    cost); ``deadline_ms`` overrides the policy-wide coalesce deadline
    for this tier's requests; ``rate``/``burst`` define the per-tenant
    token-bucket quota in requests/s (``None`` means unmetered);
    ``hedge_ms`` arms shard hedging when the primary's recent service
    p99 exceeds it; ``p99_budget_ms`` is the coalesce-p99 budget the
    ``replay-check --tiers`` gate holds this tier to.
    """

    name: str
    weight: float = 1.0
    deadline_ms: float | None = None
    rate: float | None = None
    burst: float | None = None
    hedge_ms: float | None = None
    p99_budget_ms: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tier {self.name}: weight must be positive")
        for field_name in ("deadline_ms", "rate", "burst", "hedge_ms",
                           "p99_budget_ms"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"tier {self.name}: {field_name} must be positive or None"
                )
        if self.burst is not None and self.rate is None:
            raise ValueError(f"tier {self.name}: burst needs a rate")

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "weight": self.weight}
        for field_name in ("deadline_ms", "rate", "burst", "hedge_ms",
                           "p99_budget_ms"):
            value = getattr(self, field_name)
            if value is not None:
                out[field_name] = value
        return out


def default_tier_policy() -> "TierPolicy":
    """The stock three-tier contract behind ``$REPRO_SERVE_TIERS=1``.

    Gold gets 4x the fair-queue share, a tight coalesce deadline, shard
    hedging, and the p99 budget the replay gate enforces; silver is the
    unmetered default; best-effort is quota-metered per tenant and first
    in the shed order.
    """
    return TierPolicy(
        tiers=(
            TierSpec(
                name="gold",
                weight=4.0,
                deadline_ms=2.0,
                hedge_ms=250.0,
                # Generous vs the ~10-20 ms gold p50 the committed
                # multi-tenant trace shows: the budget gates gross
                # latency inversions, not machine speed — the shed and
                # fairness floors are the deterministic teeth.
                p99_budget_ms=250.0,
            ),
            TierSpec(name="silver", weight=2.0),
            TierSpec(name="best_effort", weight=1.0, rate=120.0, burst=24.0),
        ),
    )


@dataclass(frozen=True)
class TierPolicy:
    """The full tier table plus the default tier for untagged requests."""

    tiers: tuple[TierSpec, ...]
    default_tier: str = DEFAULT_TIER

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("TierPolicy needs at least one tier")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names {names}")
        if self.default_tier not in names:
            raise ValueError(
                f"default tier {self.default_tier!r} not in {names}"
            )
        for name in names:
            shed_rank(name)  # every tier must have a shed position

    def spec(self, tier: str) -> TierSpec:
        for t in self.tiers:
            if t.name == tier:
                return t
        raise ValueError(
            f"unknown tier {tier!r} "
            f"(policy defines {[t.name for t in self.tiers]})"
        )

    def names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    def to_dict(self) -> dict:
        return {
            "default_tier": self.default_tier,
            "tiers": [t.to_dict() for t in self.tiers],
        }

    @classmethod
    def parse(cls, spec: str) -> "TierPolicy":
        """Tier overrides over the defaults, from a compact string.

        ``"gold:hedge_ms=50;best_effort:rate=40,burst=8"`` — segments
        separated by ``;``, each ``tier:key=value,...``.  A bare
        ``default=NAME`` segment changes the default tier.  Unknown
        tiers/keys raise.
        """
        policy = default_tier_policy()
        tiers = {t.name: t for t in policy.tiers}
        default_tier = policy.default_tier
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("default="):
                default_tier = segment.split("=", 1)[1].strip()
                continue
            if ":" not in segment:
                raise ValueError(
                    f"malformed tier segment {segment!r} "
                    "(expected 'tier:key=value,...')"
                )
            name, _, body = segment.partition(":")
            name = name.strip()
            if name not in tiers:
                raise ValueError(
                    f"unknown tier {name!r} in spec (expected one of {TIERS})"
                )
            overrides: dict = {}
            for pair in body.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, _, raw = pair.partition("=")
                key = key.strip()
                if key not in (
                    "weight", "deadline_ms", "rate", "burst", "hedge_ms",
                    "p99_budget_ms",
                ):
                    raise ValueError(f"unknown tier key {key!r} in {segment!r}")
                raw = raw.strip()
                overrides[key] = None if raw.lower() == "none" else float(raw)
            tiers[name] = replace(tiers[name], **overrides)
        return cls(tiers=tuple(tiers.values()), default_tier=default_tier)


class TokenBucket:
    """A classic token bucket with an explicit clock.

    ``capacity`` tokens at most, refilled continuously at ``rate``
    tokens/s; :meth:`consume` takes one token or reports exhaustion.
    Time is always passed in, so tests drive it deterministically.
    """

    def __init__(self, rate: float, capacity: float, now: float = 0.0) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.updated = float(now)

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.updated) * self.rate
            )
        self.updated = max(self.updated, now)

    def consume(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens at time ``now``; False when exhausted."""
        self._refill(now)
        if self.tokens + 1e-9 >= amount:
            self.tokens -= amount
            return True
        return False

    def available(self, now: float) -> float:
        self._refill(now)
        return self.tokens


class AdmissionController:
    """Tier/tenant admission state shared by every broker of a fabric.

    Holds the per-(tier, tenant) token buckets, the weighted-fair-queue
    virtual clocks, and the modelled per-size cost cache.  All mutating
    entry points take the lock, so shard threads share one instance.
    """

    def __init__(
        self,
        policy: TierPolicy | None = None,
        cost_fn=None,
        time_fn=time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else default_tier_policy()
        self.cost_fn = cost_fn
        self._time = time_fn
        self._lock = threading.Lock()
        self._buckets: dict[tuple[str, str], TokenBucket] = {}
        self._cost_cache: dict[int, float] = {}
        self._tenant_vt: dict[str, float] = {}
        self._global_vt = 0.0

    # ------------------------------------------------------------------
    # Resolution and cost
    # ------------------------------------------------------------------

    def resolve(
        self, tier: str | None, tenant: str | None
    ) -> tuple[str, str]:
        """Apply defaults and validate the tier name."""
        tier = tier if tier is not None else self.policy.default_tier
        self.policy.spec(tier)  # raises on unknown tier
        return tier, tenant if tenant is not None else DEFAULT_TENANT

    def bind_executor(self, executor, arch=None) -> None:
        """Derive the cost model from a live executor, once.

        Cost is modelled seconds per matrix: Cholesky flops (``n³/3``)
        over the tuned configuration's modelled GFLOP/s — the paper's
        autotuned throughput model doing admission duty.  A controller
        built with an explicit ``cost_fn`` keeps it.
        """
        if self.cost_fn is not None:
            return
        from repro.gpusim.model import estimate_performance

        def cost_fn(n: int) -> float:
            config = executor.config_for(n)
            use_arch = arch if arch is not None else executor.arch
            est = estimate_performance(
                config, batch=config.block_threads, arch=use_arch
            )
            flops = n * n * n / 3.0
            return flops / max(est.gflops, 1e-9) / 1e9

        self.cost_fn = cost_fn

    def cost(self, n: int) -> float:
        """Modelled cost of one request of dimension ``n`` (cached).

        Falls back to raw Cholesky flops when no executor has been
        bound — the *ordering* (bigger matrices cost more) is what
        shedding and fair queuing consume.
        """
        cached = self._cost_cache.get(n)
        if cached is None:
            if self.cost_fn is not None:
                cached = float(self.cost_fn(n))
            else:
                cached = n * n * n / 3.0
            self._cost_cache[n] = cached
        return cached

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------

    def check_quota(
        self, tier: str, tenant: str, now: float | None = None
    ) -> None:
        """Consume one quota token or raise :class:`QuotaExceeded`."""
        spec = self.policy.spec(tier)
        if spec.rate is None:
            return
        t = self._time() if now is None else now
        with self._lock:
            key = (tier, tenant)
            bucket = self._buckets.get(key)
            if bucket is None:
                capacity = spec.burst if spec.burst is not None else spec.rate
                bucket = self._buckets[key] = TokenBucket(
                    spec.rate, capacity, now=t
                )
            if not bucket.consume(t):
                raise QuotaExceeded(
                    f"tenant {tenant!r} exhausted its {tier} quota "
                    f"({spec.rate:g}/s, burst {bucket.capacity:g})"
                )

    # ------------------------------------------------------------------
    # Weighted fair queuing
    # ------------------------------------------------------------------

    def stamp(self, request) -> None:
        """Stamp tier metadata and the WFQ virtual finish time.

        Start-time fair queuing: a request's virtual finish is
        ``max(tenant_vt, global_vt) + cost / weight``, so a tenant that
        went idle re-enters at the current virtual time (no banked
        credit) and heavy tenants fall behind light ones in drain order.
        """
        spec = self.policy.spec(request.tier)
        cost = self.cost(request.n)
        with self._lock:
            start = max(
                self._tenant_vt.get(request.tenant, 0.0), self._global_vt
            )
            vft = start + cost / spec.weight
            self._tenant_vt[request.tenant] = vft
        request.vft = vft
        if spec.deadline_ms is not None:
            request.delay_s = spec.deadline_ms / 1e3

    def advance(self, vft: float) -> None:
        """Move the global virtual clock to the latest drained ``vft``."""
        with self._lock:
            if vft > self._global_vt:
                self._global_vt = vft

    # ------------------------------------------------------------------
    # Cost-based shedding
    # ------------------------------------------------------------------

    def victim(self, queued, incoming_tier: str):
        """The queued request to shed so an ``incoming_tier`` arrival fits.

        Only strictly-lower-tier work is sacrificed; among candidates the
        cheapest (modelled cost) goes first, ties broken toward the most
        over-served tenant (largest ``vft``) and then the newest arrival.
        Returns ``None`` when nothing queued outranks-down the arrival —
        the caller then sheds the arrival itself.
        """
        incoming_rank = shed_rank(incoming_tier)
        best = None
        best_key = None
        for request in queued:
            rank = shed_rank(request.tier)
            if rank >= incoming_rank:
                continue
            key = (rank, self.cost(request.n), -request.vft, -request.seq)
            if best is None or key < best_key:
                best, best_key = request, key
        return best

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------

    def hedge_budget_ms(self, tier: str) -> float | None:
        """The service-p99 budget beyond which ``tier`` hedges, if any."""
        return self.policy.spec(tier).hedge_ms

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return self.policy.to_dict()


def tiers_from_env() -> AdmissionController | None:
    """A controller when ``$REPRO_SERVE_TIERS`` asks for one, else None.

    ``1``/``on``/``true`` uses :func:`default_tier_policy`; any other
    non-empty value is parsed as a :meth:`TierPolicy.parse` spec.
    """
    raw = os.environ.get(TIERS_ENV, "").strip()
    if not raw or raw.lower() in ("0", "off", "none", "false"):
        return None
    if raw.lower() in ("1", "on", "true"):
        return AdmissionController(default_tier_policy())
    return AdmissionController(TierPolicy.parse(raw))


def make_admission(tiers) -> AdmissionController | None:
    """Normalize any ``tiers=`` argument into a controller.

    Accepts ``None`` (consult the environment), ``"off"``-like strings
    (explicitly disabled), ``"1"``/``"on"`` (defaults), a spec string, a
    :class:`TierPolicy`, or a ready :class:`AdmissionController`.
    """
    if tiers is None:
        return tiers_from_env()
    if isinstance(tiers, AdmissionController):
        return tiers
    if isinstance(tiers, TierPolicy):
        return AdmissionController(tiers)
    if isinstance(tiers, str):
        raw = tiers.strip()
        if not raw or raw.lower() in ("0", "off", "none", "false"):
            return None
        if raw.lower() in ("1", "on", "true"):
            return AdmissionController(default_tier_policy())
        return AdmissionController(TierPolicy.parse(raw))
    raise TypeError(
        f"tiers must be None, str, TierPolicy, or AdmissionController, "
        f"got {type(tiers).__name__}"
    )
