"""repro.serve — adaptive-batching solve service.

The paper's kernels want thousands of matrices per launch; real traffic
arrives one matrix at a time.  This subsystem bridges the two: an asyncio
broker accepts individual ``factor``/``solve`` requests, a size-bucketed
adaptive batcher coalesces them until a bucket fills (threshold snapped
to the tuned kernel's chunk size) or a latency deadline expires, and an
executor routes each flushed bucket through the tuned dispatch table,
scattering per-request results — or per-request errors — back onto the
callers' futures.  The dense compute of a flush runs on a pluggable
backend (``inline``, ``process``, ``eventsim``, ``shadow`` — see
:mod:`repro.serve.backends`).  Backpressure (bounded queue with load
shedding), per-request timeouts, retry-once for batch-poisoned requests,
and a full metrics layer round it out.  Every stage is traced through
:mod:`repro.obs` when a tracer is installed (``serve-demo --trace-out``,
``$REPRO_TRACE``), and metrics export in the Prometheus text format via
:func:`repro.obs.render_prometheus`.  Above one shard the broker scales
horizontally: :func:`~repro.serve.shard.make_broker` builds a
:class:`~repro.serve.shard.ShardedBroker` fabric of per-shard event
loops behind a consistent-hash router (:mod:`repro.serve.router`) —
see ``docs/sharding.md``.  An online control plane
(:mod:`repro.serve.control`) can adapt the hot policy knobs at serve
time from the broker's own metrics windows — see ``docs/control.md``.
Multi-tenant deployments attach an admission layer
(:mod:`repro.serve.admission`): SLA tiers with cost-based shedding,
per-tenant token-bucket quotas, weighted fair queuing, and tail-latency
hedging for the gold tier — see ``docs/tiers.md``.  The zero-copy data
plane (:mod:`repro.serve.arena`) stages request matrices straight into
shared-memory arenas in the paper's interleaved layout at enqueue time,
so the ``arena-process`` backend's flushes hand workers slot offsets
instead of pickled arrays — see ``docs/dataplane.md``.
See also ``docs/serving.md`` and ``docs/observability.md``.
"""

from repro.serve.arena import (
    ARENA_ENV,
    ArenaError,
    ArenaPool,
    SlotLease,
    StagedBatch,
    StaleSlotError,
    arena_requested,
)

from repro.serve.admission import (
    DEFAULT_TENANT,
    DEFAULT_TIER,
    SHED_ORDER,
    TIERS,
    TIERS_ENV,
    AdmissionController,
    TierPolicy,
    TierSpec,
    TokenBucket,
    default_tier_policy,
    jain_index,
    make_admission,
    shed_rank,
    tiers_from_env,
)
from repro.serve.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    ArenaProcessBackend,
    BackendError,
    BackendRun,
    EventSimBackend,
    ExecutorBackend,
    InlineBackend,
    ProcessPoolBackend,
    ShadowLapackBackend,
    backend_from_policy,
    make_backend,
)
from repro.serve.batcher import AdaptiveBatcher, PendingRequest, SizeBucket
from repro.serve.broker import SolveBroker
from repro.serve.client import (
    ReplaySummary,
    ServeClient,
    TraceEvent,
    replay_trace,
    run_demo,
    synthetic_trace,
)
from repro.serve.control import (
    CONTROLLER_ENV,
    STRATEGIES,
    AIMDStrategy,
    ControlBounds,
    Decision,
    DecisionJournal,
    HillClimbStrategy,
    Knobs,
    PolicyController,
    controller_from_env,
    make_strategy,
    replay_journal,
    verify_journal,
)
from repro.serve.executor import BatchExecutor, FlushReport
from repro.serve.graph import (
    GraphMetrics,
    GraphResult,
    GraphRunSummary,
    GraphScheduler,
    GraphValidationError,
    SolveGraph,
    SolveNode,
    demo_graphs,
    linearize,
    run_graphs,
)
from repro.serve.metrics import Histogram, ServeMetrics, Snapshot, SnapshotDelta
from repro.serve.replay import (
    ArenaGate,
    ControllerGate,
    GateTolerances,
    GridCell,
    TierGate,
    compare_arena,
    compare_controlled,
    compare_reports,
    compare_tiers,
    load_report,
    policy_grid,
    run_replay_grid,
    save_report,
)
from repro.serve.policy import (
    HOT_KNOBS,
    PLACEMENT_ENV,
    PLACEMENTS,
    SHARDS_ENV,
    DependencyFailed,
    HedgeFailed,
    NotPositiveDefiniteError,
    QuotaExceeded,
    RequestTimeout,
    ServeError,
    ServePolicy,
    ServiceClosed,
    ServiceOverloaded,
    ShardDown,
)
from repro.serve.router import RING_REPLICAS, HashRing, ShardRouter, stable_hash
from repro.serve.shard import BrokerShard, ShardedBroker, make_broker
from repro.serve.trace import (
    RecordedEvent,
    RecordedTrace,
    TraceRecorder,
    derive_seed,
    event_inputs,
    graph_groups,
    load_trace_file,
    normalize_events,
    save_trace,
    trace_sha256,
    trace_version_for,
)

__all__ = [
    "AIMDStrategy",
    "ARENA_ENV",
    "AdaptiveBatcher",
    "AdmissionController",
    "ArenaError",
    "ArenaGate",
    "ArenaPool",
    "ArenaProcessBackend",
    "DEFAULT_TENANT",
    "DEFAULT_TIER",
    "HedgeFailed",
    "QuotaExceeded",
    "SHED_ORDER",
    "TIERS",
    "TIERS_ENV",
    "TierGate",
    "TierPolicy",
    "TierSpec",
    "TokenBucket",
    "SlotLease",
    "StagedBatch",
    "StaleSlotError",
    "arena_requested",
    "compare_arena",
    "compare_tiers",
    "default_tier_policy",
    "jain_index",
    "make_admission",
    "shed_rank",
    "tiers_from_env",
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "CONTROLLER_ENV",
    "ControlBounds",
    "ControllerGate",
    "Decision",
    "DecisionJournal",
    "HillClimbStrategy",
    "Knobs",
    "PolicyController",
    "STRATEGIES",
    "Snapshot",
    "SnapshotDelta",
    "compare_controlled",
    "controller_from_env",
    "make_strategy",
    "replay_journal",
    "verify_journal",
    "BackendError",
    "BackendRun",
    "BatchExecutor",
    "BrokerShard",
    "HOT_KNOBS",
    "HashRing",
    "PLACEMENTS",
    "PLACEMENT_ENV",
    "RING_REPLICAS",
    "SHARDS_ENV",
    "ShardDown",
    "ShardRouter",
    "ShardedBroker",
    "make_broker",
    "stable_hash",
    "DependencyFailed",
    "EventSimBackend",
    "ExecutorBackend",
    "FlushReport",
    "GateTolerances",
    "GraphMetrics",
    "GraphResult",
    "GraphRunSummary",
    "GraphScheduler",
    "GraphValidationError",
    "GridCell",
    "InlineBackend",
    "ProcessPoolBackend",
    "RecordedEvent",
    "RecordedTrace",
    "ShadowLapackBackend",
    "TraceRecorder",
    "backend_from_policy",
    "compare_reports",
    "demo_graphs",
    "derive_seed",
    "event_inputs",
    "graph_groups",
    "linearize",
    "load_report",
    "load_trace_file",
    "make_backend",
    "normalize_events",
    "policy_grid",
    "run_graphs",
    "run_replay_grid",
    "save_report",
    "save_trace",
    "trace_sha256",
    "trace_version_for",
    "Histogram",
    "NotPositiveDefiniteError",
    "PendingRequest",
    "ReplaySummary",
    "RequestTimeout",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServePolicy",
    "ServiceClosed",
    "ServiceOverloaded",
    "SizeBucket",
    "SolveBroker",
    "SolveGraph",
    "SolveNode",
    "TraceEvent",
    "replay_trace",
    "run_demo",
    "synthetic_trace",
]
