"""Recorded workload traces: a versioned JSONL arrival format.

The paper's credibility rests on an exhaustive, repeatable sweep; the
serving layer earns the same treatment here.  A *trace* is the arrival
schedule of one workload — for every request its offset from trace start,
operation, matrix dimension, right-hand-side count, and an input seed —
serialized one JSON object per line behind a versioned header.  Payloads
are **never stored dense**: :func:`event_inputs` regenerates each
request's matrix (and right-hand side) deterministically from its seed,
so a few-kilobyte file replays gigabytes of traffic bit-identically.

Three producers write traces:

* :class:`TraceRecorder` hooked into a live
  :class:`~repro.serve.broker.SolveBroker` (``serve-demo
  --record-trace``, ``examples/serving_traffic.py --record-trace``)
  records arrivals as they happen, including ones the broker sheds;
* :meth:`repro.apps.als.ALSRecommender.solve_trace` derives the solve
  stream an ALS training run generates;
* ``benchmarks/traces/make_traces.py`` regenerates the canonical
  committed traces from first principles.

Consumers are :func:`repro.serve.client.replay_trace` (events replay
exactly like the synthetic ones) and the policy-grid runner + regression
gate in :mod:`repro.serve.replay`.

Format (version 1)::

    {"format": "repro-trace", "version": 1, "meta": {...}}
    {"at": 0.0, "op": "factor", "n": 8, "seed": 100003}
    {"at": 0.00005, "op": "solve", "n": 16, "nrhs": 1, "seed": 100004}

Version 2 adds the *graph annotations* of dependency-aware replay
(:mod:`repro.serve.graph`): an optional ``graph`` id groups events into
one DAG, and ``deps`` lists the event's parents as indices into **that
graph's own event sequence** (the 0-based position among events sharing
its ``graph``), so interleaved multi-graph traces stay valid under any
arrival-order merge that preserves per-graph order::

    {"at": 0.0, "op": "solve", "n": 8, "seed": 100003, "graph": 0}
    {"at": 0.001, "op": "solve", "n": 8, "seed": 100004, "graph": 0, "deps": [0]}

:func:`save_trace` stamps the header ``version: 1`` whenever no event
carries graph fields, so every dep-free trace — and every byte of the
committed v1 corpus — remains a fixed point of the v1 format.

``save → load → save`` is a byte-level fixed point (canonical key order,
defaults omitted), which is what lets tests pin the format down.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.batcher import KINDS
from repro.utils.spd import make_spd

#: Magic string in the header line of every trace file.
TRACE_FORMAT = "repro-trace"

#: Highest trace-format version this loader understands.  Version 2
#: added the optional ``graph``/``deps`` event fields; version 3 adds the
#: optional ``tier``/``tenant`` admission fields.  Writers emit the lowest
#: header version the events need (:func:`trace_version_for`), preserving
#: the v1/v2 byte fixed points for traces that don't use the new fields.
TRACE_VERSION = 3

#: Multiplier used to derive per-event input seeds from a base seed —
#: the same constant :func:`repro.serve.client.synthetic_trace` uses, so
#: recorded and synthetic workloads draw from one seed universe.
SEED_STRIDE = 100003

#: Arrival offsets are recorded at microsecond granularity: fine enough
#: for any policy the broker can express, coarse enough that re-recorded
#: floats round-trip exactly through JSON.
_AT_DECIMALS = 6


def derive_seed(base: int, index: int) -> int:
    """The input seed of the ``index``-th event under base seed ``base``."""
    return base * SEED_STRIDE + index


@dataclass(frozen=True)
class RecordedEvent:
    """One arrival in a recorded trace.

    ``seed`` fully determines the request's payload via
    :func:`event_inputs`; ``nonspd`` marks inputs deliberately poisoned
    to exercise the failure path.
    """

    at: float  # seconds since trace start, non-negative
    op: str  # "factor" | "solve"
    n: int  # matrix dimension
    nrhs: int = 0  # right-hand sides (0 for factor, >=1 for solve)
    seed: int = 0
    nonspd: bool = False
    #: Broker shard the arrival was routed to (``None`` outside a sharded
    #: fabric).  Optional and omitted when absent, so traces recorded by a
    #: plain broker stay byte-identical to the pre-shard format — version
    #: 1 readers and the fixed-point tests are unaffected.
    shard: int | None = None
    #: Solve-graph id this event belongs to (``None`` for an independent
    #: request).  Version-2 field; omitted when absent so dep-free traces
    #: keep the v1 byte layout.
    graph: int | None = None
    #: Parents of this event as 0-based positions *within its own graph's
    #: event sequence* (not global trace indices) — stable under any
    #: merge that preserves per-graph order.  Requires ``graph``.
    deps: tuple[int, ...] = ()
    #: SLA tier of the arrival (``repro.serve.admission``).  Version-3
    #: field; omitted when absent so tier-free traces keep the v1/v2 byte
    #: layout.
    tier: str | None = None
    #: Tenant id of the arrival (quotas, weighted fair queuing).
    #: Version-3 field, omitted when absent.
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"arrival offset must be >= 0, got {self.at}")
        if self.op not in KINDS:
            raise ValueError(f"op must be one of {KINDS}, got {self.op!r}")
        if self.n <= 0:
            raise ValueError(f"matrix dimension must be positive, got {self.n}")
        if self.op == "solve" and self.nrhs < 1:
            raise ValueError(f"solve events need nrhs >= 1, got {self.nrhs}")
        if self.op == "factor" and self.nrhs != 0:
            raise ValueError(f"factor events take no rhs, got nrhs={self.nrhs}")
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"shard must be >= 0 or None, got {self.shard}")
        if self.graph is not None and self.graph < 0:
            raise ValueError(f"graph must be >= 0 or None, got {self.graph}")
        object.__setattr__(self, "deps", tuple(int(d) for d in self.deps))
        if self.deps and self.graph is None:
            raise ValueError("deps require a graph id")
        if any(d < 0 for d in self.deps):
            raise ValueError(f"deps must be >= 0, got {self.deps}")
        if len(set(self.deps)) != len(self.deps):
            raise ValueError(f"duplicate deps {self.deps}")
        if self.tier is not None and not self.tier:
            raise ValueError("tier must be a non-empty string or None")
        if self.tenant is not None and not self.tenant:
            raise ValueError("tenant must be a non-empty string or None")

    def to_dict(self) -> dict:
        """Canonical JSON object: fixed key order, defaults omitted."""
        out: dict = {"at": self.at, "op": self.op, "n": self.n}
        if self.nrhs:
            out["nrhs"] = self.nrhs
        out["seed"] = self.seed
        if self.nonspd:
            out["nonspd"] = True
        if self.shard is not None:
            out["shard"] = self.shard
        if self.graph is not None:
            out["graph"] = self.graph
        if self.deps:
            out["deps"] = list(self.deps)
        if self.tier is not None:
            out["tier"] = self.tier
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "RecordedEvent":
        unknown = set(obj) - {
            "at", "op", "n", "nrhs", "seed", "nonspd", "shard", "graph", "deps",
            "tier", "tenant",
        }
        if unknown:
            raise ValueError(f"unknown event field(s) {sorted(unknown)}")
        shard = obj.get("shard")
        graph = obj.get("graph")
        tier = obj.get("tier")
        tenant = obj.get("tenant")
        return cls(
            at=float(obj["at"]),
            op=str(obj["op"]),
            n=int(obj["n"]),
            nrhs=int(obj.get("nrhs", 0)),
            seed=int(obj.get("seed", 0)),
            nonspd=bool(obj.get("nonspd", False)),
            shard=None if shard is None else int(shard),
            graph=None if graph is None else int(graph),
            deps=tuple(int(d) for d in obj.get("deps", ())),
            tier=None if tier is None else str(tier),
            tenant=None if tenant is None else str(tenant),
        )


def event_inputs(event) -> tuple[np.ndarray, np.ndarray | None]:
    """Regenerate one event's payload deterministically from its seed.

    Accepts both :class:`RecordedEvent` and the synthetic
    :class:`~repro.serve.client.TraceEvent` (whose solves always carry a
    single right-hand side).
    """
    rng = np.random.default_rng(event.seed)
    a = make_spd(event.n, rng)
    if event.nonspd:
        a[event.n // 2, event.n // 2] = -abs(a[event.n // 2, event.n // 2]) - 1.0
    b = None
    if _op_of(event) == "solve":
        nrhs = getattr(event, "nrhs", 1) or 1
        shape = (event.n,) if nrhs == 1 else (event.n, nrhs)
        b = rng.standard_normal(shape).astype(np.float32)
    return a, b


def _op_of(event) -> str:
    """``op`` of a recorded event or ``kind`` of a synthetic one."""
    return getattr(event, "op", None) or event.kind


def as_recorded(event) -> RecordedEvent:
    """Normalize any trace event to a :class:`RecordedEvent`."""
    if isinstance(event, RecordedEvent):
        return event
    op = _op_of(event)
    return RecordedEvent(
        at=event.at,
        op=op,
        n=event.n,
        nrhs=1 if op == "solve" else 0,
        seed=event.seed,
        nonspd=getattr(event, "nonspd", False),
        tier=getattr(event, "tier", None),
        tenant=getattr(event, "tenant", None),
    )


def normalize_events(trace) -> list[RecordedEvent]:
    """A :class:`RecordedEvent` list from any replayable trace shape.

    Accepts a :class:`RecordedTrace`, a list of :class:`RecordedEvent`,
    or a list of synthetic :class:`~repro.serve.client.TraceEvent`.
    """
    events = trace.events if isinstance(trace, RecordedTrace) else trace
    return [as_recorded(e) for e in events]


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


@dataclass
class RecordedTrace:
    """A loaded trace file: header metadata plus its event list."""

    events: list[RecordedEvent]
    meta: dict = field(default_factory=dict)
    version: int = TRACE_VERSION

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_s(self) -> float:
        return self.events[-1].at if self.events else 0.0

    def mix(self) -> dict[tuple[str, int, int], int]:
        """The request mix: ``{(op, n, nrhs): count}``."""
        counts: dict[tuple[str, int, int], int] = {}
        for e in self.events:
            key = (e.op, e.n, e.nrhs)
            counts[key] = counts.get(key, 0) + 1
        return counts


def _dumps(obj: dict) -> str:
    return json.dumps(obj, separators=(",", ":"), sort_keys=False)


def trace_version_for(events) -> int:
    """The lowest header version that can express ``events``.

    Tier/tenant annotations need version 3, graph annotations version 2;
    everything else is version 1, so a trace that uses neither — whoever
    writes it — stays a byte fixed point of the format it was born in.
    """
    if any(e.tier is not None or e.tenant is not None for e in events):
        return 3
    return 2 if any(e.graph is not None for e in events) else 1


def save_trace(path, events, meta: dict | None = None) -> int:
    """Write one trace file; returns the number of events written.

    Events must arrive in non-decreasing ``at`` order — a trace is an
    arrival schedule, and the loader enforces the same invariant.  Graph
    annotations must form valid per-graph DAG edges
    (:func:`_check_graph_deps`); their presence bumps the written header
    to version 2 (:func:`trace_version_for`).
    """
    events = normalize_events(events)
    _check_sorted(events)
    _check_graph_deps(events)
    header = {"format": TRACE_FORMAT, "version": trace_version_for(events)}
    if meta:
        header["meta"] = dict(sorted(meta.items()))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_dumps(header) + "\n")
        for event in events:
            fh.write(_dumps(event.to_dict()) + "\n")
    return len(events)


def load_trace_file(path) -> RecordedTrace:
    """Parse and validate one trace file written by :func:`save_trace`."""
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: header is not JSON ({exc})") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path}: not a {TRACE_FORMAT} file "
            f"(header {str(lines[0])[:60]!r})"
        )
    version = header.get("version")
    if not isinstance(version, int) or not 1 <= version <= TRACE_VERSION:
        raise ValueError(
            f"{path}: unsupported trace version {version!r} "
            f"(this reader understands 1..{TRACE_VERSION})"
        )
    events = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
        try:
            events.append(RecordedEvent.from_dict(obj))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: bad event ({exc})") from None
    if version < 2 and any(e.graph is not None for e in events):
        raise ValueError(
            f"{path}: version {version} trace carries graph/deps fields "
            f"(they need version 2)"
        )
    if version < 3 and any(
        e.tier is not None or e.tenant is not None for e in events
    ):
        raise ValueError(
            f"{path}: version {version} trace carries tier/tenant fields "
            f"(they need version 3)"
        )
    _check_sorted(events, path=path)
    _check_graph_deps(events, path=path)
    return RecordedTrace(
        events=events, meta=header.get("meta", {}), version=version
    )


def _check_sorted(events, path=None) -> None:
    for i, (a, b) in enumerate(zip(events, events[1:])):
        if b.at < a.at:
            where = f"{path}: " if path else ""
            raise ValueError(
                f"{where}arrival offsets must be non-decreasing "
                f"(event {i + 1} at {b.at} after {a.at})"
            )


def graph_groups(events) -> dict[int, list[int]]:
    """Graph id → ordered global indices of that graph's events.

    The position of a global index within its graph's list is exactly
    the per-graph position the ``deps`` field references.
    """
    groups: dict[int, list[int]] = {}
    for index, event in enumerate(events):
        if event.graph is not None:
            groups.setdefault(event.graph, []).append(index)
    return groups


def _check_graph_deps(events, path=None) -> None:
    """Every dep must point at an *earlier* event of the same graph."""
    where = f"{path}: " if path else ""
    position: dict[int, int] = {}
    for index, event in enumerate(events):
        if event.graph is None:
            continue
        pos = position.get(event.graph, 0)
        for dep in event.deps:
            if dep >= pos:
                raise ValueError(
                    f"{where}event {index} (graph {event.graph}, position "
                    f"{pos}) depends on position {dep}, which is not an "
                    f"earlier event of the same graph"
                )
        position[event.graph] = pos + 1


def trace_sha256(path) -> str:
    """Content fingerprint of a trace file, for report provenance."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(65536), b""):
            digest.update(block)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------


class TraceRecorder:
    """Accumulates arrivals into a trace, live or re-driven.

    Two modes share one code path:

    * **live** — :meth:`record` without an explicit ``at`` stamps the
      arrival with the wall-clock offset from the first recorded event
      (the broker's hook uses this; see
      :class:`~repro.serve.broker.SolveBroker`), and assigns each event a
      seed derived from ``seed`` and its index, so a recorded trace
      replays deterministically even though the original payloads are
      not kept;
    * **re-driven** — passing ``at``/``seed``/``nonspd`` explicitly makes
      ``record → save → load → re-record`` a fixed point, which is how
      the determinism tests pin the format.
    """

    def __init__(self, seed: int = 0, meta: dict | None = None, clock=None) -> None:
        self.seed = seed
        self.meta = dict(meta) if meta else {}
        self._clock = clock if clock is not None else time.monotonic
        self._origin: float | None = None
        self.events: list[RecordedEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        op: str,
        n: int,
        nrhs: int = 0,
        at: float | None = None,
        seed: int | None = None,
        nonspd: bool = False,
        shard: int | None = None,
        graph: int | None = None,
        deps: tuple[int, ...] = (),
        tier: str | None = None,
        tenant: str | None = None,
    ) -> RecordedEvent:
        """Append one arrival; returns the event as recorded."""
        if at is None:
            now = self._clock()
            if self._origin is None:
                self._origin = now
            at = round(now - self._origin, _AT_DECIMALS)
        if seed is None:
            seed = derive_seed(self.seed, len(self.events))
        event = RecordedEvent(
            at=at, op=op, n=n, nrhs=nrhs, seed=seed, nonspd=nonspd, shard=shard,
            graph=graph, deps=deps, tier=tier, tenant=tenant,
        )
        if self.events and event.at < self.events[-1].at:
            raise ValueError(
                f"arrival offsets must be non-decreasing "
                f"(got {event.at} after {self.events[-1].at})"
            )
        self.events.append(event)
        return event

    def record_event(self, event) -> RecordedEvent:
        """Re-record one existing event verbatim (fixed-point path)."""
        e = as_recorded(event)
        return self.record(
            e.op,
            e.n,
            nrhs=e.nrhs,
            at=e.at,
            seed=e.seed,
            nonspd=e.nonspd,
            shard=e.shard,
            graph=e.graph,
            deps=e.deps,
            tier=e.tier,
            tenant=e.tenant,
        )

    def save(self, path) -> int:
        """Write the accumulated events as one trace file."""
        return save_trace(path, self.events, meta=self.meta)
