"""Dependency-aware solve graphs: a DAG scheduler over the broker.

Every request the broker batches is an independent solve, but the
workloads that motivate the paper are not independent: ALS alternates
user/item half-steps, a Kalman chain's step ``t`` needs step ``t-1``,
FEM assembles before it solves.  Those pipelines are DAGs whose
*independent waves* could be coalesced — across requests, across whole
graphs — into the same interleaved flushes, which is the single biggest
fill-ratio lever the serving layer has left.

This module turns the broker into a dataflow engine without touching its
submission path:

* :class:`SolveGraph` is the client API — named :class:`SolveNode`\\ s
  (``factor``/``solve`` payloads) plus explicit dependency edges, with
  duplicate-name and self-edge errors at build time and cycle/dangling
  validation at submit;
* :func:`linearize` topo-sorts a graph with Kahn's children/in-degree
  maps into *waves* — the schedule-item pattern of tinygrad's
  ``create_schedule_with_vars`` (see SNIPPETS.md) applied to solves;
* :class:`GraphScheduler` releases each ready wave concurrently into the
  existing ``broker.submit`` path, so independent nodes from *different*
  graphs land in shared size buckets (and, above one shard, route
  per-node through the fabric's normal placement), then propagates
  results and failures downstream: a failed parent fails exactly its
  descendant cone with :class:`~repro.serve.policy.DependencyFailed`,
  never an unrelated node.

Observability follows the serve layer's pattern: a ``graph`` span wraps
each submitted graph with per-``wave`` child spans (node-count
attributes on both), :class:`GraphMetrics` mirrors
:class:`~repro.serve.metrics.ServeMetrics` (counters + histograms + a
conservation invariant), and
:func:`repro.obs.render_graph_prometheus` exposes it as disjoint
``repro_graph_*`` families.  See ``docs/graphs.md``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.obs.sketch import QuantileSketch
from repro.obs.tracer import get_tracer
from repro.serve.batcher import KINDS
from repro.serve.metrics import Histogram
from repro.serve.policy import DependencyFailed, ServiceOverloaded


class GraphValidationError(ValueError):
    """The submitted graph is not a well-formed DAG."""


@dataclass(eq=False)
class SolveNode:
    """One solve in a graph: an op, its payload, and its parents.

    ``deps`` names parent nodes *within the same graph*; the scheduler
    will not release this node until every parent has resolved.
    """

    name: str
    op: str  # "factor" | "solve"
    a: np.ndarray
    b: np.ndarray | None = None
    deps: tuple[str, ...] = ()

    @property
    def n(self) -> int:
        """Matrix dimension of the payload."""
        return int(self.a.shape[0])

    @property
    def nrhs(self) -> int:
        """Right-hand-side count (0 for factor nodes)."""
        if self.b is None:
            return 0
        return 1 if self.b.ndim == 1 else int(self.b.shape[1])


class SolveGraph:
    """A named DAG of factor/solve requests, built incrementally.

    Duplicate names, unknown ops, malformed payload shapes, and
    self-edges fail at :meth:`add` time; cycles and dangling edges
    (a dependency naming a node the graph never defines) fail at submit,
    when :func:`linearize` sees the whole graph.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: dict[str, SolveNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> list[SolveNode]:
        """The nodes in insertion order."""
        return list(self._nodes.values())

    def node(self, name: str) -> SolveNode:
        return self._nodes[name]

    def edges(self) -> int:
        """Total dependency-edge count."""
        return sum(len(node.deps) for node in self._nodes.values())

    def add(
        self,
        op: str,
        a: np.ndarray,
        b: np.ndarray | None = None,
        *,
        name: str | None = None,
        after=(),
    ) -> str:
        """Add one node; returns its name (auto-assigned when omitted).

        ``after`` lists the node's parents — names, :class:`SolveNode`
        instances, or a single name.  Parents may be declared before they
        are defined; whether they ever *are* defined is checked at
        submit.
        """
        if op not in KINDS:
            raise ValueError(f"op must be one of {KINDS}, got {op!r}")
        a = np.asarray(a)
        if a.ndim != 2 or a.shape[0] != a.shape[1] or a.shape[0] == 0:
            raise ValueError(
                f"expected one square (n, n) matrix, got shape {a.shape}"
            )
        if op == "solve":
            if b is None:
                raise ValueError("solve nodes need a right-hand side")
            b = np.asarray(b)
            if b.ndim not in (1, 2) or b.shape[0] != a.shape[0]:
                raise ValueError(
                    f"rhs shape {b.shape} incompatible with matrix {a.shape}"
                )
        elif b is not None:
            raise ValueError("factor nodes take no right-hand side")
        if name is None:
            name = f"node{len(self._nodes)}"
        if name in self._nodes:
            raise ValueError(f"duplicate node name {name!r}")
        if isinstance(after, (str, SolveNode)):
            after = (after,)
        deps = tuple(d.name if isinstance(d, SolveNode) else str(d) for d in after)
        if name in deps:
            raise ValueError(f"node {name!r} cannot depend on itself")
        if len(set(deps)) != len(deps):
            raise ValueError(f"node {name!r} lists a duplicate dependency")
        self._nodes[name] = SolveNode(name=name, op=op, a=a, b=b, deps=deps)
        return name

    def factor(self, a: np.ndarray, *, name: str | None = None, after=()) -> str:
        """Add a factor node; returns its name."""
        return self.add("factor", a, name=name, after=after)

    def solve(
        self, a: np.ndarray, b: np.ndarray, *, name: str | None = None, after=()
    ) -> str:
        """Add a solve node; returns its name."""
        return self.add("solve", a, b, name=name, after=after)


def linearize(graph: SolveGraph) -> list[list[SolveNode]]:
    """Kahn's-algorithm wave schedule of one graph.

    Builds the children and in-degree maps, then peels off waves: every
    node whose parents have all been scheduled joins the current wave.
    The result is deterministic — wave membership follows node insertion
    order — and doubles as validation: a dependency on an undefined node
    raises (dangling edge), and leftover nodes after the peel are, by
    construction, the members of at least one cycle, named in the error.
    """
    nodes = graph.nodes
    children: dict[str, list[str]] = {node.name: [] for node in nodes}
    in_degree: dict[str, int] = {node.name: 0 for node in nodes}
    for node in nodes:
        for dep in node.deps:
            if dep not in children:
                raise GraphValidationError(
                    f"node {node.name!r} depends on undefined node {dep!r}"
                )
            children[dep].append(node.name)
            in_degree[node.name] += 1

    by_name = {node.name: node for node in nodes}
    ready = [node.name for node in nodes if in_degree[node.name] == 0]
    waves: list[list[SolveNode]] = []
    scheduled = 0
    while ready:
        waves.append([by_name[name] for name in ready])
        scheduled += len(ready)
        next_ready = []
        for name in ready:
            for child in children[name]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    next_ready.append(child)
        # Kahn's releases children in parent-completion order; re-anchor
        # to insertion order so the linearization is a pure function of
        # the graph, not of edge declaration order.
        ready = [n.name for n in nodes if n.name in set(next_ready)]
    if scheduled != len(nodes):
        cyclic = sorted(name for name, deg in in_degree.items() if deg > 0)
        raise GraphValidationError(
            f"graph contains a dependency cycle through {cyclic}"
        )
    return waves


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

_GRAPH_COUNTERS = (
    "graphs",
    "graphs_ok",
    "graphs_failed",
    "nodes",
    "nodes_completed",
    "nodes_failed",
    "nodes_dep_failed",
    "nodes_shed",
    "waves",
)


class GraphMetrics:
    """Counters and histograms of one scheduler's graph traffic.

    Duck-types the :class:`~repro.serve.metrics.ServeMetrics` surface the
    Prometheus renderer reads (``counters``/``histograms``/
    ``unaccounted``), so one exposition path serves both; the
    conservation invariant here is *node* accounting — every node of
    every submitted graph ends completed, failed, dependency-failed, or
    shed.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {name: 0 for name in _GRAPH_COUNTERS}
        # Critical-path latency is a tail metric (an SLO could gate it),
        # so it gets the lossless-merge sketch like the serve latency
        # families; the shape histograms keep the reservoir.
        self.histograms: dict = {
            "wave_width": Histogram(),
            "graph_depth": Histogram(),
            "graph_critical_path_ms": QuantileSketch(),
        }

    @property
    def unaccounted(self) -> int:
        c = self.counters
        return c["nodes"] - (
            c["nodes_completed"]
            + c["nodes_failed"]
            + c["nodes_dep_failed"]
            + c["nodes_shed"]
        )

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "unaccounted": self.unaccounted,
            "histograms": {
                name: hist.summary() for name, hist in self.histograms.items()
            },
        }


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------


@dataclass
class GraphResult:
    """Outcome of one submitted graph.

    Every node appears in exactly one of ``results`` (name → solution
    array) or ``failures`` (name → exception; a
    :class:`~repro.serve.policy.DependencyFailed` for nodes skipped
    because an ancestor failed).  ``waves`` is the linearization that
    ran, ``wave_widths`` how many nodes each wave actually released, and
    ``critical_path_ms`` the wall time from first wave to last
    resolution — the latency a dependent caller observed.
    """

    graph: str
    results: dict[str, np.ndarray] = field(default_factory=dict)
    failures: dict[str, Exception] = field(default_factory=dict)
    waves: list[list[str]] = field(default_factory=list)
    wave_widths: list[int] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def critical_path_ms(self) -> float:
        return self.elapsed_s * 1e3

    def result(self, name: str) -> np.ndarray:
        """The node's solution; re-raises its failure if it has one."""
        if name in self.failures:
            raise self.failures[name]
        return self.results[name]


class GraphScheduler:
    """Releases a graph's ready waves into an existing broker.

    Works against any object with the broker submit surface — a plain
    :class:`~repro.serve.broker.SolveBroker` or a
    :class:`~repro.serve.shard.ShardedBroker` fabric, where each node of
    a wave routes through the normal shard placement individually.  One
    scheduler may serve many concurrent :meth:`submit` calls; their
    independent waves coalesce in the broker's shared size buckets,
    which is the whole point.
    """

    def __init__(self, broker, metrics: GraphMetrics | None = None, tracer=None):
        self.broker = broker
        self.metrics = metrics or GraphMetrics()
        self._tracer = tracer
        self._seq = 0

    @property
    def tracer(self):
        return self._tracer if self._tracer is not None else get_tracer()

    async def submit(self, graph: SolveGraph, *, sequential: bool = False):
        """Run one graph to completion; returns a :class:`GraphResult`.

        ``sequential`` degrades each wave to one node at a time — the
        classic await-each-solve client every graph caller starts from,
        kept here so benchmarks (``benchmarks/bench_graph.py``) can
        measure exactly what wave release buys.

        Never raises for node failures: per-node errors (including
        broker sheds) land in ``result.failures`` and fail exactly their
        descendant cone with
        :class:`~repro.serve.policy.DependencyFailed`.
        """
        waves = linearize(graph)
        if sequential:
            waves = [[node] for wave in waves for node in wave]
        self._seq += 1
        label = graph.name or f"graph-{self._seq}"
        m = self.metrics
        m.counters["graphs"] += 1
        m.counters["nodes"] += len(graph)
        tracer = self.tracer
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        result = GraphResult(graph=label, waves=[[n.name for n in w] for w in waves])
        for index, wave in enumerate(waves):
            runnable: list[SolveNode] = []
            for node in wave:
                failed_dep = next((d for d in node.deps if d in result.failures), None)
                if failed_dep is None:
                    runnable.append(node)
                    continue
                upstream = result.failures[failed_dep]
                # Point at the intrinsic root, not an intermediate skip,
                # so a deep chain's error still names the real culprit.
                if isinstance(upstream, DependencyFailed):
                    ancestor, cause = upstream.ancestor, upstream.cause
                else:
                    ancestor, cause = failed_dep, upstream
                result.failures[node.name] = DependencyFailed(
                    node.name, ancestor, cause=cause
                )
                m.counters["nodes_dep_failed"] += 1
            m.counters["waves"] += 1
            m.histograms["wave_width"].observe(len(runnable))
            result.wave_widths.append(len(runnable))
            if not runnable:
                continue
            w0 = loop.time()
            outcomes = await asyncio.gather(
                *(self.broker.submit(node.op, node.a, node.b) for node in runnable),
                return_exceptions=True,
            )
            w1 = loop.time()
            for node, outcome in zip(runnable, outcomes):
                if isinstance(outcome, BaseException):
                    result.failures[node.name] = outcome
                    if isinstance(outcome, ServiceOverloaded):
                        m.counters["nodes_shed"] += 1
                    else:
                        m.counters["nodes_failed"] += 1
                else:
                    result.results[node.name] = outcome
                    m.counters["nodes_completed"] += 1
            if tracer.enabled:
                tracer.record(
                    "wave",
                    w0,
                    w1,
                    cat="graph",
                    track=f"graph {label}",
                    wave=index,
                    nodes=len(runnable),
                    skipped=len(wave) - len(runnable),
                )
        result.elapsed_s = loop.time() - t0
        m.counters["graphs_ok" if result.ok else "graphs_failed"] += 1
        m.histograms["graph_depth"].observe(len(waves))
        m.histograms["graph_critical_path_ms"].observe(result.critical_path_ms)
        if tracer.enabled:
            tracer.record(
                "graph",
                t0,
                loop.time(),
                cat="graph",
                track=f"graph {label}",
                nodes=len(graph),
                waves=len(waves),
                completed=len(result.results),
                failed=len(result.failures),
            )
        return result


# ----------------------------------------------------------------------
# Sync driver (demo / examples)
# ----------------------------------------------------------------------


@dataclass
class GraphRunSummary:
    """Outcome of :func:`run_graphs`: per-graph results plus both metric
    planes (the scheduler's :class:`GraphMetrics` and the broker's
    :class:`~repro.serve.metrics.ServeMetrics`)."""

    results: list[GraphResult]
    graph_metrics: GraphMetrics
    metrics: object
    elapsed_s: float
    backend: str = "inline"
    shards: int = 1

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


def run_graphs(
    graphs,
    policy=None,
    dispatcher=None,
    warmup: bool = True,
    sequential: bool = False,
) -> GraphRunSummary:
    """Submit many graphs concurrently through a fresh broker, blocking.

    The synchronous entry point the examples and ``serve-demo
    --graph-demo`` share: builds the policy-shaped broker
    (:func:`~repro.serve.shard.make_broker` — sharded above one shard),
    runs one :class:`GraphScheduler` over every graph at once so their
    independent waves share flushes, and returns when all graphs have
    resolved.
    """
    from repro.serve.shard import ShardedBroker, make_broker

    graphs = list(graphs)

    async def _run() -> GraphRunSummary:
        async with make_broker(policy=policy, dispatcher=dispatcher) as broker:
            if warmup:
                broker.warmup(
                    node.n for graph in graphs for node in graph.nodes
                )
            scheduler = GraphScheduler(broker)
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            results = await asyncio.gather(
                *(scheduler.submit(g, sequential=sequential) for g in graphs)
            )
            elapsed = loop.time() - t0
            sharded = isinstance(broker, ShardedBroker)
            return GraphRunSummary(
                results=list(results),
                graph_metrics=scheduler.metrics,
                metrics=broker.metrics,
                elapsed_s=elapsed,
                backend=broker.backend_name,
                shards=broker.shard_count if sharded else 1,
            )

    return asyncio.run(_run())


def demo_graphs(
    count: int = 6,
    chain: int = 4,
    width: int = 4,
    ns: tuple[int, ...] = (8,),
    seed: int = 0,
) -> list[SolveGraph]:
    """Synthetic demo DAGs: ``count`` independent ladders of ``chain``
    levels, each level a wave of ``width`` solves depending on the whole
    previous level (the ALS half-step shape).  Deterministic in ``seed``.
    """
    from repro.utils.spd import make_spd

    for knob, value in (("count", count), ("chain", chain), ("width", width)):
        if value <= 0:
            raise ValueError(f"{knob} must be positive, got {value}")
    if not ns:
        raise ValueError("ns must be non-empty")

    rng = np.random.default_rng(seed)
    graphs = []
    for g in range(count):
        graph = SolveGraph(name=f"demo-{g}")
        previous: list[str] = []
        for level in range(chain):
            n = int(ns[(g + level) % len(ns)])
            current = []
            for k in range(width):
                a = make_spd(n, rng)
                b = rng.standard_normal(n).astype(np.float32)
                current.append(
                    graph.solve(a, b, name=f"l{level}k{k}", after=tuple(previous))
                )
            previous = current
        graphs.append(graph)
    return graphs
