"""Flush execution: pack a bucket, run the tuned kernel, scatter results.

One flush turns a list of same-size requests into the dense ``(batch, n,
n)`` batch the kernels want, routes it through the tuned dispatch table
(or the library-default :class:`KernelConfig` when no table is loaded),
validates every factor with the LAPACK-style ``info`` diagnosis, and
scatters per-request results — or per-request *errors*: a non-SPD matrix
fails only its own future, never the whole bucket.

The dense factorization itself is delegated to an
:class:`~repro.serve.backends.ExecutorBackend` ("run this block with this
config"); everything request-shaped — packing, diagnosis, solo retries,
solves, outcome scattering — is shared here across all backends.

A request that fails inside a batch is optionally retried once on its
own.  The generated kernels are branch-free, so a sick matrix cannot
raise — it silently poisons its lane with NaNs — and a solo re-run is the
cheap way to distinguish "this input is genuinely not SPD" from "this
request was collateral damage of a sick batch-mate" without trusting any
cross-lane invariant of a particular executor backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.autotune.dispatch import TunedDispatcher
from repro.core.config import KernelConfig
from repro.core.solve import batch_solve
from repro.core.validate import factorization_info
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.model import estimate_performance
from repro.obs.tracer import get_tracer
from repro.serve.backends import BackendRun, ExecutorBackend, make_backend
from repro.serve.batcher import PendingRequest
from repro.serve.policy import NotPositiveDefiniteError


@dataclass
class FlushReport:
    """What one flushed bucket produced.

    ``outcomes`` pairs every request with either its result array or the
    exception destined for its future; the broker only scatters.
    ``service_s`` is the flush's service time as charged by the backend —
    wall clock for the host backends, modeled GPU time for ``eventsim``.
    """

    n: int
    size: int
    threshold: int
    reason: str
    gflops: float
    outcomes: list[tuple[PendingRequest, np.ndarray | Exception]]
    retried: int = 0
    rescued: int = 0
    backend: str = "inline"
    service_s: float = 0.0
    shadow_checked: int = 0
    shadow_mismatch: int = 0
    #: Monotonic (t0, t1) of the primary backend run, for the tracing
    #: layer's per-request backend stage; ``None`` when untimed.
    backend_window: tuple[float, float] | None = None
    #: Whether the primary run travelled through the shared-memory
    #: arena (offsets, not bytes) and the copy bill it still paid —
    #: solo retries and fallback requests move dense payloads even on
    #: an arena backend.  The broker accounts this as
    #: ``bytes_copied_fallback``.
    staged: bool = False
    bytes_copied: int = 0

    @property
    def fill(self) -> float:
        return self.size / self.threshold if self.threshold else 0.0


class BatchExecutor:
    """Runs flushed buckets through the tuned batch-Cholesky path."""

    def __init__(
        self,
        dispatcher: TunedDispatcher | None = None,
        fast_math: bool = False,
        retry_failed_solo: bool = True,
        arch: GPUArchitecture = P100,
        backend: "ExecutorBackend | str | None" = None,
        tracer=None,
    ) -> None:
        self.dispatcher = dispatcher
        self.fast_math = fast_math
        self.retry_failed_solo = retry_failed_solo
        self.arch = arch
        self.backend = make_backend(backend, arch=arch)
        self._tracer = tracer

    @property
    def tracer(self):
        """The explicit tracer if one was injected, else the global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    def config_for(self, n: int) -> KernelConfig:
        """Tuned configuration for ``n``; library default without a table."""
        if self.dispatcher is not None:
            return self.dispatcher.config_for(n, fast_math=self.fast_math)
        return KernelConfig(n=n, fast_math=self.fast_math)

    def warmup(self, ns) -> None:
        """Pre-compile kernels and prime model caches for the given sizes.

        The first flush of a cold size otherwise pays codegen/compilation
        inside its latency budget — hundreds of milliseconds against
        single-digit-millisecond deadlines.  Services warm up before
        taking traffic; trace replays do the same.  Backend warmup runs
        wherever flushes will run — the process pool compiles in every
        worker.
        """
        for n in sorted(set(int(x) for x in ns)):
            config = self.config_for(n)
            self.backend.warmup(config)
            estimate_performance(config, batch=config.block_threads, arch=self.arch)

    def close(self) -> None:
        """Release the backend's resources (worker pools, wrapped backends)."""
        self.backend.close()

    # ------------------------------------------------------------------
    # Flush execution
    # ------------------------------------------------------------------

    def execute(
        self, requests: list[PendingRequest], reason: str, threshold: int | None = None
    ) -> FlushReport:
        """Factorize (and solve) one flushed bucket, scattering per request."""
        if not requests:
            raise ValueError("cannot execute an empty bucket")
        n = requests[0].n
        if any(r.n != n for r in requests):
            raise ValueError("bucket mixes matrix dimensions")
        config = self.config_for(n)
        threshold = len(requests) if threshold is None else threshold
        tracer = self.tracer
        track = f"backend:{self.backend.name}"

        started = time.perf_counter()
        runs: list[BackendRun] = []

        # Zero-copy path: when the backend owns an arena pool and every
        # request in the bucket was staged at enqueue time (same dtype —
        # a mixed-dtype bucket would silently upcast through np.stack,
        # which the slot bytes cannot represent), hand the backend the
        # leases instead of a dense block.  Any unstaged straggler sends
        # the whole bucket down the classic pickle path; its leases are
        # still released at scatter.  The dtype must also match the
        # kernel's compute dtype: the dense path returns factors in
        # config.np_dtype() while staged factors come back through slots
        # of the *request* dtype — staging a mismatched dtype would
        # silently cast and break byte-identity with the pickle path.
        staged_batch = None
        arenas = getattr(self.backend, "arenas", None)
        if (
            arenas is not None
            and all(r.lease is not None for r in requests)
            and len({r.a.dtype.str for r in requests}) == 1
            and requests[0].a.dtype == config.np_dtype()
        ):
            from repro.serve.arena import StagedBatch

            staged_batch = StagedBatch(
                n=n,
                dtype=requests[0].a.dtype.str,
                entries=[(r.lease, r.a) for r in requests],
            )

        backend_t0 = time.monotonic()
        if staged_batch is not None:
            run = self.backend.factorize_staged(staged_batch, config)
        else:
            a = np.stack([r.a for r in requests])
            run = self.backend.factorize(a, config)
        backend_t1 = time.monotonic()
        if tracer.enabled:
            tracer.record(
                "backend_run",
                backend_t0,
                backend_t1,
                cat="executor",
                track=track,
                n=n,
                batch=len(requests),
                reason=reason,
                staged=staged_batch is not None,
            )
        runs.append(run)
        factors = run.factors
        info = factorization_info(factors)

        retried = rescued = 0
        for i in np.nonzero(info)[0]:
            request = requests[int(i)]
            if not self.retry_failed_solo:
                continue
            request.attempts += 1
            retried += 1
            solo_t0 = time.monotonic()
            solo_run = self.backend.factorize(request.a[None], config)
            if tracer.enabled:
                tracer.record(
                    "solo_retry",
                    solo_t0,
                    time.monotonic(),
                    cat="executor",
                    track=track,
                    n=n,
                    request=request.seq,
                )
            runs.append(solo_run)
            solo_info = factorization_info(solo_run.factors)
            if solo_info[0] == 0:
                factors[i] = solo_run.factors[0]
                info[i] = 0
                rescued += 1
            else:
                info[i] = solo_info[0]

        # Per-index results first; the (request, outcome) pairs are built
        # only once every index is resolved, so no ``None`` placeholder
        # can survive into the report the broker scatters from.
        results: dict[int, np.ndarray | Exception] = {}
        for i, request in enumerate(requests):
            if info[i]:
                results[i] = NotPositiveDefiniteError(int(info[i]))
            elif request.kind == "factor":
                results[i] = np.array(factors[i])

        # Solves: forward/backward substitution against the healthy
        # factors, grouped by right-hand-side shape so mixed single- and
        # multi-RHS requests batch independently.
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            if request.kind == "solve" and not info[i]:
                groups.setdefault(request.b.shape, []).append(i)
        solve_t0 = time.monotonic() if (tracer.enabled and groups) else 0.0
        for idx in groups.values():
            l_group = factors[idx]
            b_group = np.stack([requests[i].b for i in idx])
            x = batch_solve(l_group, b_group)
            for j, i in enumerate(idx):
                results[i] = np.array(x[j])
        if tracer.enabled and groups:
            tracer.record(
                "solve",
                solve_t0,
                time.monotonic(),
                cat="executor",
                track=track,
                n=n,
                solves=sum(len(idx) for idx in groups.values()),
            )

        missing = [i for i in range(len(requests)) if i not in results]
        if missing:
            raise RuntimeError(
                f"flush left {len(missing)} request(s) without an outcome "
                f"(indices {missing}); every lane must resolve or fail"
            )
        outcomes = [(requests[i], results[i]) for i in range(len(requests))]

        if any(r.seconds is not None for r in runs):
            service_s = sum(r.seconds for r in runs if r.seconds is not None)
        else:
            service_s = time.perf_counter() - started
        if run.gflops is not None:
            gflops = run.gflops
        else:
            est = estimate_performance(config, batch=len(requests), arch=self.arch)
            gflops = est.gflops
        return FlushReport(
            n=n,
            size=len(requests),
            threshold=threshold,
            reason=reason,
            gflops=gflops,
            outcomes=outcomes,
            retried=retried,
            rescued=rescued,
            backend=self.backend.name,
            service_s=service_s,
            shadow_checked=sum(r.shadow_checked for r in runs),
            shadow_mismatch=sum(r.shadow_mismatch for r in runs),
            backend_window=(backend_t0, backend_t1),
            staged=staged_batch is not None,
            bytes_copied=sum(r.bytes_copied for r in runs),
        )
