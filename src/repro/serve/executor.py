"""Flush execution: pack a bucket, run the tuned kernel, scatter results.

One flush turns a list of same-size requests into the dense ``(batch, n,
n)`` batch the kernels want, routes it through the tuned dispatch table
(or the library-default :class:`KernelConfig` when no table is loaded),
validates every factor with the LAPACK-style ``info`` diagnosis, and
scatters per-request results — or per-request *errors*: a non-SPD matrix
fails only its own future, never the whole bucket.

A request that fails inside a batch is optionally retried once on its
own.  The generated kernels are branch-free, so a sick matrix cannot
raise — it silently poisons its lane with NaNs — and a solo re-run is the
cheap way to distinguish "this input is genuinely not SPD" from "this
request was collateral damage of a sick batch-mate" without trusting any
cross-lane invariant of a particular executor backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.dispatch import TunedDispatcher
from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.solve import batch_solve
from repro.core.validate import factorization_info
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.model import estimate_performance
from repro.serve.batcher import PendingRequest
from repro.serve.policy import NotPositiveDefiniteError


@dataclass
class FlushReport:
    """What one flushed bucket produced.

    ``outcomes`` pairs every request with either its result array or the
    exception destined for its future; the broker only scatters.
    """

    n: int
    size: int
    threshold: int
    reason: str
    gflops: float
    outcomes: list[tuple[PendingRequest, np.ndarray | Exception]]
    retried: int = 0
    rescued: int = 0

    @property
    def fill(self) -> float:
        return self.size / self.threshold if self.threshold else 0.0


class BatchExecutor:
    """Runs flushed buckets through the tuned batch-Cholesky path."""

    def __init__(
        self,
        dispatcher: TunedDispatcher | None = None,
        fast_math: bool = False,
        retry_failed_solo: bool = True,
        arch: GPUArchitecture = P100,
    ) -> None:
        self.dispatcher = dispatcher
        self.fast_math = fast_math
        self.retry_failed_solo = retry_failed_solo
        self.arch = arch

    def config_for(self, n: int) -> KernelConfig:
        """Tuned configuration for ``n``; library default without a table."""
        if self.dispatcher is not None:
            return self.dispatcher.config_for(n, fast_math=self.fast_math)
        return KernelConfig(n=n, fast_math=self.fast_math)

    def warmup(self, ns) -> None:
        """Pre-compile kernels and prime model caches for the given sizes.

        The first flush of a cold size otherwise pays codegen/compilation
        inside its latency budget — hundreds of milliseconds against
        single-digit-millisecond deadlines.  Services warm up before
        taking traffic; trace replays do the same.
        """
        from repro.codegen.compile import compiled_kernel

        for n in sorted(set(int(x) for x in ns)):
            config = self.config_for(n)
            compiled_kernel(config)
            estimate_performance(config, batch=config.block_threads, arch=self.arch)

    # ------------------------------------------------------------------
    # Flush execution
    # ------------------------------------------------------------------

    def _factorize(self, a: np.ndarray, config: KernelConfig) -> np.ndarray:
        # Branch-free kernels turn non-SPD pivots into NaNs rather than
        # raising; silence the IEEE warnings and let ``info`` diagnose.
        with np.errstate(invalid="ignore", divide="ignore"):
            return batch_cholesky(a, config)

    def execute(
        self, requests: list[PendingRequest], reason: str, threshold: int | None = None
    ) -> FlushReport:
        """Factorize (and solve) one flushed bucket, scattering per request."""
        if not requests:
            raise ValueError("cannot execute an empty bucket")
        n = requests[0].n
        if any(r.n != n for r in requests):
            raise ValueError("bucket mixes matrix dimensions")
        config = self.config_for(n)
        threshold = len(requests) if threshold is None else threshold

        a = np.stack([r.a for r in requests])
        factors = self._factorize(a, config)
        info = factorization_info(factors)

        retried = rescued = 0
        for i in np.nonzero(info)[0]:
            request = requests[int(i)]
            if not self.retry_failed_solo:
                continue
            request.attempts += 1
            retried += 1
            solo = self._factorize(request.a[None], config)
            solo_info = factorization_info(solo)
            if solo_info[0] == 0:
                factors[i] = solo[0]
                info[i] = 0
                rescued += 1
            else:
                info[i] = solo_info[0]

        outcomes: list[tuple[PendingRequest, np.ndarray | Exception]] = [None] * len(
            requests
        )
        for i, request in enumerate(requests):
            if info[i]:
                outcomes[i] = (request, NotPositiveDefiniteError(int(info[i])))
            elif request.kind == "factor":
                outcomes[i] = (request, np.array(factors[i]))

        # Solves: forward/backward substitution against the healthy
        # factors, grouped by right-hand-side shape so mixed single- and
        # multi-RHS requests batch independently.
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            if request.kind == "solve" and not info[i]:
                groups.setdefault(request.b.shape, []).append(i)
        for idx in groups.values():
            l_group = factors[idx]
            b_group = np.stack([requests[i].b for i in idx])
            x = batch_solve(l_group, b_group)
            for j, i in enumerate(idx):
                outcomes[i] = (requests[i], np.array(x[j]))

        est = estimate_performance(config, batch=len(requests), arch=self.arch)
        return FlushReport(
            n=n,
            size=len(requests),
            threshold=threshold,
            reason=reason,
            gflops=est.gflops,
            outcomes=outcomes,
            retried=retried,
            rescued=rescued,
        )
