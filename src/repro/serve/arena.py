"""Shared-memory staging arenas: the zero-copy interleaved data plane.

The process-pool backend historically pickled every dense ``(batch, n,
n)`` block into the worker — a full copy plus serialization per flush on
the hottest path, which is exactly the strided-traffic mistake the
paper's interleaved layout exists to avoid, just relocated to the host.
This module moves batch staging into ``multiprocessing.shared_memory``
arenas laid out in the paper's own interleaved format
(:mod:`repro.layouts.interleaved`), so coalescing happens at **enqueue
time**: the batcher writes each request's matrix straight into its
bucket's arena slot, and a flush hands the worker ``(arena_name,
slot_ids, generation)`` — offsets, not bytes.

Layout
------
Arenas are organised per ``(n, dtype)`` bucket as a list of fixed-size
*slabs*.  One slab is one shared-memory segment::

    [ generation header: capacity x uint64 ][ pad to 128 B ][ data ]

The data region is a ``(n, n, capacity)`` C-order array of *lanes*:
``lanes[j, i, b]`` holds element ``(i, j)`` of the matrix in slot ``b``,
so the flat element offset is ``(j*n + i) * capacity + b`` — exactly
:meth:`InterleavedLayout.element_offset` for a batch padded to
``capacity`` (slab capacities are multiples of :data:`WARP_SIZE`, and
the data region starts 128-byte aligned, the paper's alignment rule).
Staging matrix ``A`` into slot ``b`` is ``lanes[:, :, b] = A.T``;
reading it back is ``lanes[:, :, b].T``.  Both are exact element
permutations, so the staged path is byte-identical to the pickle path.

Generation protocol
-------------------
Every slot carries a generation counter in the slab header.  Acquiring a
slot bumps it and stamps the lease; releasing (or re-staging after a
worker death) bumps it again.  A worker checks the header against the
lease generation *before* reading and *before* writing back — a recycled
or re-staged slot therefore can never be read (or clobbered) by a stale
worker: the check fails and the flush surfaces as a
:class:`StaleSlotError`, which the backend converts into an ordinary
:class:`~repro.serve.backends.BackendError` retry.

Fallback
--------
Platforms where shared memory is unavailable (no ``/dev/shm``,
restricted working dirs) must not error: the first failing allocation
disables the pool and :meth:`ArenaPool.stage` returns ``None`` from then
on, which callers treat as "use the pickle path" — accounted as
``bytes_copied_fallback`` instead of crashing.  See ``docs/dataplane.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.layouts.base import WARP_SIZE
from repro.serve.policy import ServeError

#: Environment variable: any truthy value makes :func:`make_backend`
#: (with no explicit backend) pick ``arena-process`` instead of the
#: pickle-path process pool.  The CI serve matrix sets it.
ARENA_ENV = "REPRO_SERVE_ARENA"

#: Values of :data:`ARENA_ENV` that read as "off".
_FALSY = ("", "0", "false", "no", "off")

#: Data regions start on this alignment inside the segment (the paper's
#: coalescing argument assumes 128-byte aligned buffers).
ARENA_ALIGN = 128

#: Default slots per slab.  Multiples of :data:`WARP_SIZE` keep the slab
#: capacity equal to its own padded batch, so slab offsets *are*
#: interleaved-layout offsets.
DEFAULT_SLAB_SLOTS = 64


def arena_requested() -> bool:
    """Whether ``$REPRO_SERVE_ARENA`` asks for the arena data plane."""
    import os

    return os.environ.get(ARENA_ENV, "").strip().lower() not in _FALSY


class ArenaError(ServeError):
    """The arena data plane failed structurally (not a solve failure)."""


class StaleSlotError(ArenaError):
    """A worker touched a slot whose generation moved on without it."""


@dataclass(eq=False)
class SlotLease:
    """One staged matrix's claim on an arena slot.

    Mutable on purpose: :meth:`ArenaPool.restage` re-stamps the
    generation *in place* after a worker death, so the
    ``PendingRequest.lease`` reference held by the broker stays valid
    across the retry.  ``released`` makes release idempotent — scatter,
    error paths and ``fail_pending`` may race to clean the same request.
    """

    n: int
    dtype: str
    slab: int
    slot: int
    generation: int
    nbytes: int
    released: bool = False


@dataclass
class StagedBatch:
    """A flush's worth of leases plus the host-side source matrices.

    ``entries`` pairs each lease with the original dense matrix it was
    staged from.  The sources are kept because workers factorize *in
    place* over the staged inputs: if a worker dies mid-write the slot is
    torn, and the retry must re-stage from the host copy (with a
    generation bump) before running again.
    """

    n: int
    dtype: str
    entries: list[tuple[SlotLease, np.ndarray]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def leases(self) -> list[SlotLease]:
        return [lease for lease, _ in self.entries]

    @property
    def nbytes(self) -> int:
        return sum(lease.nbytes for lease, _ in self.entries)


class _Slab:
    """One shared-memory segment holding ``capacity`` interleaved slots."""

    def __init__(self, n: int, dtype: np.dtype, capacity: int) -> None:
        from multiprocessing import shared_memory

        self.n = n
        self.dtype = np.dtype(dtype)
        self.capacity = capacity
        header = capacity * np.dtype(np.uint64).itemsize
        self.data_offset = -(-header // ARENA_ALIGN) * ARENA_ALIGN
        data = n * n * capacity * self.dtype.itemsize
        self.shm = shared_memory.SharedMemory(
            create=True, size=self.data_offset + data
        )
        self.generations = np.ndarray(
            (capacity,), dtype=np.uint64, buffer=self.shm.buf[:header]
        )
        self.generations[:] = 0
        #: ``lanes[j, i, b]`` = element (i, j) of slot ``b`` — the
        #: interleaved layout with the slab capacity as padded batch.
        self.lanes = np.ndarray(
            (n, n, capacity),
            dtype=self.dtype,
            buffer=self.shm.buf[self.data_offset : self.data_offset + data],
        )
        self.free: list[int] = list(range(capacity - 1, -1, -1))

    @property
    def nbytes(self) -> int:
        return self.shm.size

    def close(self) -> None:
        # Views into shm.buf must be dropped before close() or the
        # exported-pointer check in BufferWrapper raises.
        self.generations = None
        self.lanes = None
        try:
            self.shm.close()
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class ArenaPool:
    """Per-backend (hence per-shard) slab allocator over shared memory.

    Thread-safe: staging happens on the broker's event-loop thread while
    re-staging after a worker death runs on the executor thread, so every
    mutation takes the pool lock.  All counters are monotonic; the live
    invariant the conservation gates hold is
    ``slots_staged == slots_released + leaked`` with ``leaked == 0`` once
    the broker has drained.
    """

    def __init__(self, slab_slots: int = DEFAULT_SLAB_SLOTS) -> None:
        if slab_slots <= 0:
            raise ValueError(f"slab_slots must be positive, got {slab_slots}")
        # Round up to a warp multiple so capacity == padded batch.
        self.slab_slots = -(-slab_slots // WARP_SIZE) * WARP_SIZE
        self._lock = threading.Lock()
        self._buckets: dict[tuple[int, str], list[_Slab]] = {}
        self._closed = False
        self.disabled: str | None = None
        self.slots_staged = 0
        self.slots_released = 0
        self.bytes_staged = 0
        self.generation_bumps = 0
        self.hwm_bytes = 0
        self.segment_bytes = 0

    # -- allocation ----------------------------------------------------

    def _slabs(self, n: int, dtype: np.dtype) -> list[_Slab]:
        return self._buckets.setdefault((n, np.dtype(dtype).str), [])

    def _acquire(self, n: int, dtype: np.dtype) -> tuple[_Slab, int, int]:
        slabs = self._slabs(n, dtype)
        for index, slab in enumerate(slabs):
            if slab.free:
                return slab, index, slab.free.pop()
        slab = _Slab(n, np.dtype(dtype), self.slab_slots)
        slabs.append(slab)
        self.segment_bytes += slab.nbytes
        self.hwm_bytes = max(self.hwm_bytes, self.segment_bytes)
        return slab, len(slabs) - 1, slab.free.pop()

    def stage(self, a: np.ndarray) -> SlotLease | None:
        """Write one dense ``(n, n)`` matrix into a slot; lease or ``None``.

        ``None`` means "use the copy fallback": the pool is closed or
        disabled, or shared memory could not be allocated on this
        platform (the failure disables the pool so later requests skip
        straight to the fallback instead of re-erroring).
        """
        a = np.asarray(a)
        if (
            self._closed
            or self.disabled is not None
            or a.ndim != 2
            or a.shape[0] != a.shape[1]
        ):
            return None
        n = int(a.shape[0])
        with self._lock:
            if self._closed or self.disabled is not None:
                return None
            try:
                slab, slab_index, slot = self._acquire(n, a.dtype)
            except (OSError, ValueError, ImportError) as exc:
                self.disabled = f"{type(exc).__name__}: {exc}"
                return None
            slab.generations[slot] += 1
            slab.lanes[:, :, slot] = a.T
            lease = SlotLease(
                n=n,
                dtype=slab.dtype.str,
                slab=slab_index,
                slot=slot,
                generation=int(slab.generations[slot]),
                nbytes=int(a.nbytes),
            )
            self.slots_staged += 1
            self.bytes_staged += lease.nbytes
            return lease

    def release(self, lease: SlotLease | None) -> bool:
        """Return a slot to the free list; idempotent; ``True`` if freed."""
        if lease is None or lease.released:
            return False
        with self._lock:
            if lease.released:
                return False
            lease.released = True
            self.slots_released += 1
            if self._closed:
                return True
            slab = self._buckets[(lease.n, lease.dtype)][lease.slab]
            # Invalidate before recycling: a stale worker holding the old
            # generation must fail its check, never read the next tenant.
            slab.generations[lease.slot] += 1
            slab.free.append(lease.slot)
            return True

    def restage(self, staged: StagedBatch) -> None:
        """Rewrite a flush's slots from host copies after a worker death.

        Bumps every slot's generation (so a half-dead worker still
        holding the old lease can neither read nor clobber it), rewrites
        the staged bytes from the kept host sources — the worker may have
        died mid-write, leaving torn factors — and re-stamps each lease
        in place so broker-held references stay valid.
        """
        with self._lock:
            for lease, source in staged.entries:
                if lease.released:
                    raise ArenaError("restage of a released lease")
                slab = self._buckets[(lease.n, lease.dtype)][lease.slab]
                slab.generations[lease.slot] += 1
                slab.lanes[:, :, lease.slot] = np.asarray(source).T
                lease.generation = int(slab.generations[lease.slot])
                self.generation_bumps += 1
                self.bytes_staged += lease.nbytes

    def gather(self, staged: StagedBatch) -> np.ndarray:
        """Dense ``(batch, n, n)`` read-back of a flush's slots (parent side)."""
        with self._lock:
            out = np.empty(
                (len(staged.entries), staged.n, staged.n),
                dtype=np.dtype(staged.dtype),
            )
            for k, (lease, _) in enumerate(staged.entries):
                if lease.released:
                    raise ArenaError("gather of a released lease")
                slab = self._buckets[(lease.n, lease.dtype)][lease.slab]
                if int(slab.generations[lease.slot]) != lease.generation:
                    raise StaleSlotError(
                        f"slot {lease.slot} generation moved under a gather"
                    )
                out[k] = slab.lanes[:, :, lease.slot].T
            return out

    def describe(self, staged: StagedBatch) -> tuple:
        """Picklable handle a worker can attach from: offsets, not bytes."""
        with self._lock:
            entries = []
            for lease, _ in staged.entries:
                slab = self._buckets[(lease.n, lease.dtype)][lease.slab]
                entries.append(
                    (
                        slab.shm.name,
                        slab.data_offset,
                        slab.capacity,
                        lease.slot,
                        lease.generation,
                    )
                )
            return ("repro.arena/v1", staged.n, staged.dtype, tuple(entries))

    # -- accounting ----------------------------------------------------

    @property
    def leaked(self) -> int:
        """Slots staged but never released — must be 0 after a drain."""
        return self.slots_staged - self.slots_released

    def stats(self) -> dict:
        return {
            "slots_staged": self.slots_staged,
            "slots_released": self.slots_released,
            "leaked": self.leaked,
            "bytes_staged": self.bytes_staged,
            "hwm_bytes": self.hwm_bytes,
            "generation_bumps": self.generation_bumps,
            "disabled": self.disabled,
        }

    def segment_names(self) -> list[str]:
        """Names of all live segments (for pool initializer pre-attach)."""
        with self._lock:
            return [
                slab.shm.name
                for slabs in self._buckets.values()
                for slab in slabs
            ]

    def close(self) -> None:
        """Unlink every slab.  Idempotent; later stages hit the fallback."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for slabs in self._buckets.values():
                for slab in slabs:
                    slab.close()
            self._buckets.clear()


# -- worker side -------------------------------------------------------
#
# Everything below runs inside pool workers.  Attachment is cached per
# segment per process: the pool initializer pre-attaches the segments
# alive at pool creation, and slabs grown later attach lazily on first
# use.  The parent owns segment lifecycle, so attaches must leave the
# resource tracker alone: under forkserver the tracker process is
# *shared* with the parent, so a worker-side register is deduped away
# and a worker-side unregister would delete the parent's own
# registration; under spawn a worker-side registration would make the
# worker's tracker unlink (and warn about) segments it never owned.
# Suppressing registration for the attach covers both.

_ATTACHED: dict[str, object] = {}


def worker_attach(name: str):
    """Attach (once per process) to a parent-owned segment by name."""
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
    _ATTACHED[name] = shm
    return shm


def _worker_views(handle: tuple):
    """Yield ``(gens, lanes, slot, generation)`` per handle entry."""
    tag, n, dtype, entries = handle
    if tag != "repro.arena/v1":
        raise ArenaError(f"unknown arena handle tag {tag!r}")
    dt = np.dtype(dtype)
    for name, data_offset, capacity, slot, generation in entries:
        shm = worker_attach(name)
        gens = np.ndarray(
            (capacity,), dtype=np.uint64, buffer=shm.buf[: capacity * 8]
        )
        data = n * n * capacity * dt.itemsize
        lanes = np.ndarray(
            (n, n, capacity),
            dtype=dt,
            buffer=shm.buf[data_offset : data_offset + data],
        )
        yield gens, lanes, slot, generation


def worker_gather(handle: tuple) -> np.ndarray:
    """Dense batch from a staged handle, generation-checked per slot."""
    _, n, dtype, entries = handle
    out = np.empty((len(entries), n, n), dtype=np.dtype(dtype))
    for k, (gens, lanes, slot, generation) in enumerate(_worker_views(handle)):
        if int(gens[slot]) != generation:
            raise StaleSlotError(
                f"slot {slot} generation moved before worker read"
            )
        out[k] = lanes[:, :, slot].T
    return out


def worker_write_back(handle: tuple, factors: np.ndarray) -> None:
    """Write factors into the staged slots in place, generation-checked."""
    for k, (gens, lanes, slot, generation) in enumerate(_worker_views(handle)):
        if int(gens[slot]) != generation:
            raise StaleSlotError(
                f"slot {slot} generation moved before worker write-back"
            )
        lanes[:, :, slot] = np.asarray(factors[k]).T
