"""Serving policy: the knobs trading batch fill against request latency.

The paper's kernels only approach their modelled throughput when thousands
of matrices are packed into one interleaved batch; a serving layer that
flushed every request individually would run each kernel at batch 1 and
throw the whole premise away.  :class:`ServePolicy` captures the classic
continuous-batching compromise — wait for a bucket to fill, but never make
the oldest request wait longer than a latency deadline — plus the
robustness knobs a bounded service needs (queue cap with load shedding,
per-request timeouts, retry-once for requests caught in a sick batch).

The flush threshold is *snapped to the tuned kernel's chunk size*: a
chunked-interleaved kernel processes whole chunks, so flushing 300
requests through a ``chunk_size=128`` configuration pads two thirds of the
last chunk with identity matrices.  Snapping to a multiple of the chunk
keeps every flushed batch on the packed fast path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

from repro.core.config import KernelConfig

#: Placement policies of the sharded broker fabric (see
#: :mod:`repro.serve.router`): ``size`` keys the hash ring by matrix
#: dimension so one shard owns each size class, ``hash`` keys it by
#: (dimension, request) so one hot size spreads across replicas.
PLACEMENTS = ("size", "hash")

#: Environment variables consulted when a policy leaves ``shards`` /
#: ``placement`` unset — the CI matrix uses them to run the serve suite
#: through a sharded fabric without touching each test's policy.
SHARDS_ENV = "REPRO_SERVE_SHARDS"
PLACEMENT_ENV = "REPRO_SERVE_PLACEMENT"

#: Sane bounds on the batching knobs, enforced both at construction and
#: at :meth:`ServePolicy.validate_update` time.  The online controller
#: (:mod:`repro.serve.control`) mutates these knobs every few hundred
#: milliseconds; a runaway strategy (or a bad sweep config, the same
#: class of bug ``run_sweep`` guards against) must hit a hard wall here
#: rather than drive the broker into a degenerate regime — a flush
#: threshold beyond any kernel's batch range, or a deadline so long the
#: ticker effectively stops.
TARGET_BATCH_BOUNDS = (1, 1 << 20)
MAX_DELAY_BOUNDS_S = (1e-5, 300.0)

#: The knobs a live broker accepts through ``update_policy`` — everything
#: else (backend, worker counts, shard count, queue cap, ...) is wired
#: into constructed objects and only changes with a restart.
HOT_KNOBS = ("target_batch", "max_delay_s", "placement")


class ServeError(RuntimeError):
    """Base class for errors raised by the serving layer."""


class ServiceOverloaded(ServeError):
    """The pending-request queue is full; the request was shed."""


class QuotaExceeded(ServiceOverloaded):
    """The tenant's token-bucket quota is exhausted; the request was shed.

    A subclass of :class:`ServiceOverloaded` so quota refusals count as
    sheds everywhere sheds are counted — conservation
    (``submitted == completed + failed + shed``) is unchanged.
    """


class HedgeFailed(ServeError):
    """Every attempt of a hedged request failed (primary and hedge)."""


class ShardDown(ServeError):
    """The broker shard holding this request died before resolving it.

    Raised for the in-flight futures of a killed shard, and for new
    submissions when no shard of the fabric is left alive.
    """


class DependencyFailed(ServeError):
    """An upstream node of a solve graph failed, so this node never ran.

    Raised by the :class:`~repro.serve.graph.GraphScheduler` for exactly
    the descendant cone of a failed node — ``ancestor`` names the nearest
    *intrinsically* failed ancestor (not an intermediate skip) and
    ``cause`` carries that ancestor's own exception.
    """

    def __init__(self, node: str, ancestor: str, cause: Exception | None = None):
        detail = f" ({type(cause).__name__}: {cause})" if cause is not None else ""
        super().__init__(
            f"graph node {node!r} skipped: upstream node {ancestor!r} "
            f"failed{detail}"
        )
        self.node = node
        self.ancestor = ancestor
        self.cause = cause


class RequestTimeout(ServeError):
    """The request's latency budget expired before its bucket flushed."""


class ServiceClosed(ServeError):
    """The broker is shut down and no longer accepts requests."""


class NotPositiveDefiniteError(ServeError):
    """The request's own matrix failed to factorize (LAPACK info > 0)."""

    def __init__(self, info: int) -> None:
        super().__init__(
            f"matrix is not positive definite: factorization failed at "
            f"column {info - 1} (LAPACK info={info})"
        )
        self.info = info


@dataclass(frozen=True)
class ServePolicy:
    """Tunable behaviour of the adaptive-batching broker.

    Attributes
    ----------
    target_batch:
        Flush a size bucket once it holds this many requests.  Snapped to
        the tuned kernel's chunk size by :meth:`flush_threshold`.
    max_delay_s:
        Latency deadline: a bucket whose *oldest* request has waited this
        long is flushed regardless of fill.  This is the serving-layer
        analogue of the paper's batch-size sensitivity — larger deadlines
        buy fuller batches (higher GFLOP/s) at higher tail latency.
    max_queue_depth:
        Total pending requests (across all buckets) before new submissions
        are shed with :class:`ServiceOverloaded`.
    request_timeout_s:
        Per-request budget from submission to completion; ``None`` waits
        forever.
    retry_failed_solo:
        Re-run a request that failed inside a batch once on its own before
        failing its future — rescues requests poisoned by a sick
        batch-mate while still failing genuinely non-SPD inputs.
    snap_to_chunk:
        Snap the flush threshold to the tuned configuration's chunk size
        (see module docstring).  Disable to study the padding cost.
    tick_s:
        Deadline-scan interval of the broker's background ticker; defaults
        to a quarter of ``max_delay_s``.
    backend:
        Executor backend name (``inline``, ``process``, ``eventsim``,
        ``shadow``, ``arena-process`` — see :mod:`repro.serve.backends`).
        ``None`` consults the ``REPRO_SERVE_BACKEND`` environment
        variable; with that unset too, a truthy ``REPRO_SERVE_ARENA``
        selects ``arena-process`` (the zero-copy shared-memory data
        plane, :mod:`repro.serve.arena`) and the final fallback is
        ``inline``.
    process_workers:
        Worker-process count of the ``process`` backend's pool.
    flush_timeout_s:
        Per-flush compute budget of the ``process`` backend; a flush that
        outlives it fails (after one retry on a fresh worker) with
        ``BackendError``.  ``None`` waits forever.
    shadow_fraction:
        Fraction of flushes the ``shadow`` backend mirrors through the
        LAPACK reference (deterministically — 0.25 mirrors every fourth
        flush).
    shadow_tolerance:
        Maximum relative per-element drift between kernel and LAPACK
        factors before a mirrored matrix counts as a ``shadow_mismatch``.
    snapshot_interval_s:
        Period of the broker's telemetry snapshots: every interval the
        current queue depth, per-bucket fill ratios, and request counters
        are emitted as counter samples through the installed
        :mod:`repro.obs` tracer, turning lifetime aggregates into time
        series.  ``None`` (the default) disables snapshots; they are also
        skipped while tracing is disabled.
    shards:
        Broker shard count of the fabric (:mod:`repro.serve.shard`).
        ``None`` consults the ``REPRO_SERVE_SHARDS`` environment variable
        and falls back to 1; at 1 the plain single-loop
        :class:`~repro.serve.broker.SolveBroker` serves directly, above 1
        :func:`~repro.serve.shard.make_broker` builds a
        :class:`~repro.serve.shard.ShardedBroker` running one broker
        event loop (and one backend instance) per shard.  ``max_queue_depth``
        and the other robustness knobs apply *per shard*.
    placement:
        Shard placement policy (``size`` or ``hash`` — see
        :mod:`repro.serve.router`).  ``None`` consults
        ``REPRO_SERVE_PLACEMENT`` and falls back to ``size``.
    """

    target_batch: int = 256
    max_delay_s: float = 0.005
    max_queue_depth: int = 8192
    request_timeout_s: float | None = 30.0
    retry_failed_solo: bool = True
    snap_to_chunk: bool = True
    tick_s: float | None = None
    backend: str | None = None
    process_workers: int = 2
    flush_timeout_s: float | None = 30.0
    shadow_fraction: float = 1.0
    shadow_tolerance: float = 1e-3
    snapshot_interval_s: float | None = None
    shards: int | None = None
    placement: str | None = None

    def __post_init__(self) -> None:
        if self.target_batch <= 0:
            raise ValueError(f"target_batch must be positive, got {self.target_batch}")
        if self.max_delay_s <= 0:
            raise ValueError(f"max_delay_s must be positive, got {self.max_delay_s}")
        if self.max_queue_depth <= 0:
            raise ValueError(
                f"max_queue_depth must be positive, got {self.max_queue_depth}"
            )
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive or None, got {self.request_timeout_s}"
            )
        if self.tick_s is not None and self.tick_s <= 0:
            raise ValueError(f"tick_s must be positive or None, got {self.tick_s}")
        if self.process_workers <= 0:
            raise ValueError(
                f"process_workers must be positive, got {self.process_workers}"
            )
        if self.flush_timeout_s is not None and self.flush_timeout_s <= 0:
            raise ValueError(
                f"flush_timeout_s must be positive or None, got {self.flush_timeout_s}"
            )
        if not 0.0 <= self.shadow_fraction <= 1.0:
            raise ValueError(
                f"shadow_fraction must be in [0, 1], got {self.shadow_fraction}"
            )
        if self.shadow_tolerance <= 0:
            raise ValueError(
                f"shadow_tolerance must be positive, got {self.shadow_tolerance}"
            )
        if self.snapshot_interval_s is not None and self.snapshot_interval_s <= 0:
            raise ValueError(
                f"snapshot_interval_s must be positive or None, "
                f"got {self.snapshot_interval_s}"
            )
        if self.shards is not None and self.shards <= 0:
            raise ValueError(
                f"shards must be positive or None, got {self.shards}"
            )
        if self.placement is not None and self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        lo, hi = TARGET_BATCH_BOUNDS
        if not lo <= self.target_batch <= hi:
            raise ValueError(
                f"target_batch must be within [{lo}, {hi}], got {self.target_batch}"
            )
        lo_s, hi_s = MAX_DELAY_BOUNDS_S
        if not lo_s <= self.max_delay_s <= hi_s:
            raise ValueError(
                f"max_delay_s must be within [{lo_s}, {hi_s}], got {self.max_delay_s}"
            )

    def validate_update(self, new: "ServePolicy") -> "ServePolicy":
        """Check that ``new`` is a legal *hot* replacement for this policy.

        A live broker accepts updates only to the knobs in
        :data:`HOT_KNOBS` — everything else (backend, worker pools, shard
        count, queue cap, ...) is baked into constructed objects and
        cannot change without a restart.  ``new`` has already passed
        ``__post_init__`` bounds checks by existing; this adds the
        cold-knob comparison and returns ``new`` for chaining.  Raises
        :class:`ValueError` naming every frozen field the update tried
        to change.
        """
        if not isinstance(new, ServePolicy):
            raise TypeError(f"expected ServePolicy, got {type(new).__name__}")
        frozen = [
            f.name
            for f in fields(self)
            if f.name not in HOT_KNOBS
            and getattr(self, f.name) != getattr(new, f.name)
        ]
        if frozen:
            raise ValueError(
                f"update_policy may only change {HOT_KNOBS}; "
                f"attempted to change frozen knobs: {', '.join(frozen)}"
            )
        return new

    def shard_count(self) -> int:
        """The effective shard count: explicit, else ``$REPRO_SERVE_SHARDS``, else 1."""
        if self.shards is not None:
            return self.shards
        value = os.environ.get(SHARDS_ENV, "").strip()
        if not value:
            return 1
        try:
            shards = int(value)
        except ValueError:
            raise ValueError(
                f"{SHARDS_ENV} must be an integer, got {value!r}"
            ) from None
        if shards <= 0:
            raise ValueError(f"{SHARDS_ENV} must be positive, got {shards}")
        return shards

    def placement_name(self) -> str:
        """The effective placement: explicit, else ``$REPRO_SERVE_PLACEMENT``, else size."""
        if self.placement is not None:
            return self.placement
        value = os.environ.get(PLACEMENT_ENV, "").strip()
        if not value:
            return PLACEMENTS[0]
        if value not in PLACEMENTS:
            raise ValueError(
                f"{PLACEMENT_ENV} must be one of {PLACEMENTS}, got {value!r}"
            )
        return value

    def flush_interval(self) -> float:
        """How often the broker scans buckets for expired deadlines."""
        if self.tick_s is not None:
            return self.tick_s
        return max(self.max_delay_s / 4.0, 1e-4)

    def flush_threshold(self, config: KernelConfig) -> int:
        """The fill level at which a bucket routed to ``config`` flushes.

        For chunked layouts the target is rounded *down* to a whole number
        of chunks (never below one chunk), so a full flush packs the
        buffer with zero identity padding.  Non-chunked configurations use
        ``target_batch`` directly.
        """
        if not (self.snap_to_chunk and config.chunked):
            return self.target_batch
        chunks = self.target_batch // config.chunk_size
        return max(config.chunk_size, chunks * config.chunk_size)
