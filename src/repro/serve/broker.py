"""The asyncio request broker: futures in, coalesced batches out.

``SolveBroker`` is the front door of the serving layer.  Callers submit
individual ``factor(A)`` / ``solve(A, b)`` requests and await a future;
behind the door the broker coalesces them into per-size buckets
(:mod:`repro.serve.batcher`), flushes a bucket the moment it fills — or
when its oldest request hits the latency deadline, scanned by a
background ticker — and scatters per-request results back onto the
futures.  The numeric work of a flush runs in the event loop's default
thread pool so submissions keep flowing while a batch factorizes; the
executor's backend (:mod:`repro.serve.backends`) may further ship it to a
worker process, letting flush compute escape the GIL entirely.

Robustness is policy-driven (:mod:`repro.serve.policy`): a bounded queue
sheds excess load with :class:`ServiceOverloaded`, per-request timeouts
abandon requests still waiting in a bucket, and requests that fail inside
a batch are retried once solo before their future fails.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np

from repro.autotune.dispatch import TunedDispatcher
from repro.serve.backends import backend_from_policy
from repro.serve.batcher import KINDS, AdaptiveBatcher, PendingRequest, SizeBucket
from repro.serve.executor import BatchExecutor, FlushReport
from repro.serve.metrics import ServeMetrics
from repro.serve.policy import (
    RequestTimeout,
    ServePolicy,
    ServiceClosed,
    ServiceOverloaded,
)


class SolveBroker:
    """Accepts individual requests and serves them from coalesced batches.

    Use as an async context manager::

        async with SolveBroker(policy=ServePolicy(max_delay_s=0.002)) as broker:
            l = await broker.factor(a)          # (n, n) Cholesky factor
            x = await broker.solve(a, b)        # A x = b

    The broker lazily starts its deadline ticker on first submission, so
    constructing one outside a context manager also works as long as
    :meth:`close` runs before the event loop goes away.
    """

    def __init__(
        self,
        policy: ServePolicy | None = None,
        dispatcher: TunedDispatcher | None = None,
        executor: BatchExecutor | None = None,
        metrics: ServeMetrics | None = None,
    ) -> None:
        self.policy = policy or ServePolicy()
        # A broker that builds its own executor also owns its backend (and
        # closes it — worker pools outlive nothing); a caller-supplied
        # executor stays the caller's to manage.
        self._owns_executor = executor is None
        self.executor = executor or BatchExecutor(
            dispatcher=dispatcher,
            retry_failed_solo=self.policy.retry_failed_solo,
            backend=backend_from_policy(self.policy),
        )
        self.metrics = metrics or ServeMetrics()
        self.batcher = AdaptiveBatcher(
            threshold_for=lambda n: self.policy.flush_threshold(
                self.executor.config_for(n)
            )
        )
        self._seq = 0
        self._closed = False
        self._ticker: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "SolveBroker":
        """Start the deadline ticker (idempotent)."""
        if self._ticker is None or self._ticker.done():
            self._ticker = asyncio.get_running_loop().create_task(self._tick_loop())
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop accepting requests; flush (or drop) whatever is queued."""
        if self._closed:
            return
        self._closed = True
        if drain:
            for bucket in self.batcher.pop_all():
                await self._run_flush(bucket.requests, "drain", bucket.threshold)
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._ticker is not None:
            self._ticker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ticker
            self._ticker = None
        if self._owns_executor:
            self.executor.close()

    async def __aenter__(self) -> "SolveBroker":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def pending(self) -> int:
        """Requests queued in buckets, waiting to be flushed."""
        return self.batcher.pending

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def factor(self, a: np.ndarray) -> np.ndarray:
        """Factor one SPD matrix; resolves to its ``(n, n)`` lower factor."""
        return await self.submit("factor", a)

    async def solve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` for one SPD matrix; resolves to ``x``."""
        return await self.submit("solve", a, b)

    async def submit(
        self, kind: str, a: np.ndarray, b: np.ndarray | None = None
    ) -> np.ndarray:
        """Queue one request and await its result."""
        a, b = self._validate(kind, a, b)
        if self._closed:
            raise ServiceClosed("broker is closed")
        await self.start()
        if self.batcher.pending >= self.policy.max_queue_depth:
            self.metrics.record_submit(self.batcher.pending)
            self.metrics.record_shed()
            raise ServiceOverloaded(
                f"queue depth {self.batcher.pending} at its "
                f"{self.policy.max_queue_depth}-request cap; request shed"
            )

        loop = asyncio.get_running_loop()
        self._seq += 1
        request = PendingRequest(
            seq=self._seq,
            kind=kind,
            a=a,
            b=b,
            future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        bucket = self.batcher.add(request)
        self.metrics.record_submit(self.batcher.pending)
        if bucket.full:
            self._spawn_flush(bucket, "full")
        return await self._await_result(request)

    def _validate(self, kind, a, b):
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        a = np.array(a, copy=True)  # decouple from caller mutation
        if a.ndim != 2 or a.shape[0] != a.shape[1] or a.shape[0] == 0:
            raise ValueError(f"expected one square (n, n) matrix, got shape {a.shape}")
        if kind == "solve":
            if b is None:
                raise ValueError("solve requests need a right-hand side")
            b = np.array(b, copy=True)
            if b.ndim not in (1, 2) or b.shape[0] != a.shape[0]:
                raise ValueError(
                    f"rhs shape {b.shape} incompatible with matrix {a.shape}; "
                    "expected (n,) or (n, nrhs)"
                )
        elif b is not None:
            raise ValueError("factor requests take no right-hand side")
        return a, b

    async def _await_result(self, request: PendingRequest) -> np.ndarray:
        timeout = self.policy.request_timeout_s
        if timeout is None:
            return await request.future
        try:
            return await asyncio.wait_for(asyncio.shield(request.future), timeout)
        except asyncio.TimeoutError:
            if self.batcher.discard(request):
                request.future.cancel()
                self.metrics.record_timeout()
                raise RequestTimeout(
                    f"request (n={request.n}, {request.kind}) expired after "
                    f"{timeout}s waiting for its bucket to flush"
                ) from None
            # Already flushed: the result lands momentarily; honour it.
            return await request.future

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _spawn_flush(self, bucket: SizeBucket, reason: str) -> None:
        requests = self.batcher.pop(bucket.n)
        if not requests:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_flush(requests, reason, bucket.threshold)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_flush(
        self, requests: list[PendingRequest], reason: str, threshold: int
    ) -> None:
        loop = asyncio.get_running_loop()
        # Coalesce latency is the time a request spent waiting to be
        # batched — measured at flush start, before the numeric work.
        flush_started = loop.time()
        waits = [flush_started - r.enqueued_at for r in requests]
        try:
            report = await loop.run_in_executor(
                None, lambda: self.executor.execute(requests, reason, threshold)
            )
        except Exception as exc:  # kernel/codegen failure: fail the bucket
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
                    self.metrics.record_failure()
            return
        self._scatter(report, waits)

    def _scatter(self, report: FlushReport, waits: list[float]) -> None:
        for request, outcome in report.outcomes:
            if request.future.done():  # timed out mid-flight; nobody listens
                continue
            if isinstance(outcome, Exception):
                request.future.set_exception(outcome)
                self.metrics.record_failure()
            else:
                request.future.set_result(outcome)
                self.metrics.record_completion()
        for i in range(report.retried):
            self.metrics.record_retry(rescued=i < report.rescued)
        self.metrics.record_flush(
            size=report.size,
            threshold=report.threshold,
            reason=report.reason,
            gflops=report.gflops,
            wait_times_s=waits,
            service_s=report.service_s,
            shadow_checked=report.shadow_checked,
            shadow_mismatch=report.shadow_mismatch,
        )

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.policy.flush_interval())
            now = asyncio.get_running_loop().time()
            for bucket in self.batcher.pop_due(now, self.policy.max_delay_s):
                task = asyncio.get_running_loop().create_task(
                    self._run_flush(bucket.requests, "deadline", bucket.threshold)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
