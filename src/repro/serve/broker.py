"""The asyncio request broker: futures in, coalesced batches out.

``SolveBroker`` is the front door of the serving layer.  Callers submit
individual ``factor(A)`` / ``solve(A, b)`` requests and await a future;
behind the door the broker coalesces them into per-size buckets
(:mod:`repro.serve.batcher`), flushes a bucket the moment it fills — or
when its oldest request hits the latency deadline, scanned by a
background ticker — and scatters per-request results back onto the
futures.  The numeric work of a flush runs in the event loop's default
thread pool so submissions keep flowing while a batch factorizes; the
executor's backend (:mod:`repro.serve.backends`) may further ship it to a
worker process, letting flush compute escape the GIL entirely.

Robustness is policy-driven (:mod:`repro.serve.policy`): a bounded queue
sheds excess load with :class:`ServiceOverloaded`, per-request timeouts
abandon requests still waiting in a bucket, and requests that fail inside
a batch are retried once solo before their future fails.
"""

from __future__ import annotations

import asyncio
import contextlib
import time

import numpy as np

from repro.autotune.dispatch import TunedDispatcher
from repro.obs.tracer import get_tracer
from repro.serve.admission import AdmissionController
from repro.serve.backends import backend_from_policy
from repro.serve.batcher import KINDS, AdaptiveBatcher, PendingRequest, SizeBucket
from repro.serve.executor import BatchExecutor, FlushReport
from repro.serve.metrics import ServeMetrics, Snapshot
from repro.serve.policy import (
    QuotaExceeded,
    RequestTimeout,
    ServePolicy,
    ServiceClosed,
    ServiceOverloaded,
)


class SolveBroker:
    """Accepts individual requests and serves them from coalesced batches.

    Use as an async context manager::

        async with SolveBroker(policy=ServePolicy(max_delay_s=0.002)) as broker:
            l = await broker.factor(a)          # (n, n) Cholesky factor
            x = await broker.solve(a, b)        # A x = b

    The broker lazily starts its deadline ticker on first submission, so
    constructing one outside a context manager also works as long as
    :meth:`close` runs before the event loop goes away.
    """

    def __init__(
        self,
        policy: ServePolicy | None = None,
        dispatcher: TunedDispatcher | None = None,
        executor: BatchExecutor | None = None,
        metrics: ServeMetrics | None = None,
        tracer=None,
        recorder=None,
        shard_id: int | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.policy = policy or ServePolicy()
        self._tracer = tracer
        #: Identity of this broker inside a sharded fabric
        #: (:mod:`repro.serve.shard`); ``None`` for a standalone broker.
        #: Stamped onto shed accounting so cross-shard metrics can say
        #: *which* loop was saturated, not just that one was.
        self.shard_id = shard_id
        #: Optional :class:`~repro.serve.trace.TraceRecorder`; when set,
        #: every validated arrival — including ones the queue cap sheds —
        #: is appended to it, so any run can be replayed later.
        self.recorder = recorder
        # A broker that builds its own executor also owns its backend (and
        # closes it — worker pools outlive nothing); a caller-supplied
        # executor stays the caller's to manage.
        self._owns_executor = executor is None
        self.executor = executor or BatchExecutor(
            dispatcher=dispatcher,
            retry_failed_solo=self.policy.retry_failed_solo,
            backend=backend_from_policy(self.policy),
            tracer=tracer,
        )
        #: Optional tier/tenant admission layer
        #: (:mod:`repro.serve.admission`).  When set, submissions are
        #: quota-checked, stamped with weighted-fair virtual finish
        #: times, shed cost-first under backpressure, and attributed to
        #: per-tier metrics.  A fabric shares one controller across its
        #: shards.
        self.admission = admission
        self.metrics = metrics or ServeMetrics()
        if admission is not None:
            admission.bind_executor(self.executor)
        #: The backend's arena pool when the zero-copy data plane is on
        #: (:mod:`repro.serve.arena`); ``None`` on pickle-path backends.
        #: The batcher stages through it at enqueue time; the broker
        #: owns every release so ``staged == released`` is provable from
        #: one place.
        self._stager = getattr(self.executor.backend, "arenas", None)
        self.batcher = AdaptiveBatcher(
            threshold_for=lambda n: self.policy.flush_threshold(
                self.executor.config_for(n)
            ),
            stager=self._stager,
        )
        self._seq = 0
        self._closed = False
        self._ticker: asyncio.Task | None = None
        self._snapshotter: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        # Requests popped from the batcher whose flush hasn't resolved yet.
        # The batcher no longer knows them, so abandoning the broker
        # (fail_pending, e.g. on shard kill) must fail these explicitly or
        # their futures would hang forever.
        self._flushing: set[PendingRequest] = set()
        # Previous telemetry snapshot; emit_snapshot derives windowed
        # rates from consecutive pairs via Snapshot.delta.
        self._last_snapshot: Snapshot | None = None

    @property
    def tracer(self):
        """The explicit tracer if one was injected, else the global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def backend_name(self) -> str:
        """Name of the executor backend serving this broker's flushes."""
        return self.executor.backend.name

    def warmup(self, ns) -> None:
        """Pre-resolve kernel configs for the given matrix sizes."""
        self.executor.warmup(ns)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "SolveBroker":
        """Start the deadline ticker and snapshot emitter (idempotent)."""
        if self._ticker is None or self._ticker.done():
            self._ticker = asyncio.get_running_loop().create_task(self._tick_loop())
        if self.policy.snapshot_interval_s is not None and (
            self._snapshotter is None or self._snapshotter.done()
        ):
            self._snapshotter = asyncio.get_running_loop().create_task(
                self._snapshot_loop()
            )
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop accepting requests; flush (or drop) whatever is queued."""
        if self._closed:
            return
        self._closed = True
        if drain:
            for bucket in self.batcher.pop_all():
                self._flushing.update(bucket.requests)
                await self._run_flush(bucket.requests, "drain", bucket.threshold)
        else:
            # Dropped requests still give their arena slots back, so the
            # staged == released ledger balances even on a hard close.
            for request in list(self.batcher.queued()):
                self._release_lease(request)
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        for attr in ("_ticker", "_snapshotter"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                setattr(self, attr, None)
        self.emit_snapshot()  # final sample so the series covers shutdown
        if self._owns_executor:
            self.executor.close()

    def fail_pending(self, exc: Exception) -> int:
        """Fail every request this broker still holds with ``exc``.

        Covers both requests waiting in batcher buckets *and* requests
        already popped for a flush that never resolved — the shard-kill
        path of the fabric (:mod:`repro.serve.shard`) calls this from the
        broker's own loop so conservation (submitted == completed +
        failed + shed) survives an abrupt death.  Returns the number of
        futures failed.
        """
        abandoned = list(self._flushing)
        self._flushing.clear()
        for bucket in self.batcher.pop_all():
            abandoned.extend(bucket.requests)
        failed = 0
        for request in abandoned:
            self._release_lease(request)
            if not request.future.done():
                request.future.set_exception(exc)
                self.metrics.record_failure()
                if self.admission is not None:
                    self.metrics.record_tier_failure(request.tier)
                failed += 1
        return failed

    async def __aenter__(self) -> "SolveBroker":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def pending(self) -> int:
        """Requests queued in buckets, waiting to be flushed."""
        return self.batcher.pending

    def update_policy(self, policy: ServePolicy) -> ServePolicy:
        """Hot-swap the batching knobs of a live broker; returns the old policy.

        Only the knobs in :data:`~repro.serve.policy.HOT_KNOBS` may change
        (enforced by :meth:`ServePolicy.validate_update`).  The swap is
        atomic from the coalescing layer's point of view: must be called
        on the broker's own event loop (the fabric's fan-out does this via
        ``call_soon_threadsafe``), where it replaces ``self.policy``,
        recomputes every bucket threshold, and immediately flushes any
        bucket the new threshold made full — the next coalesce boundary.
        In-flight flushes are untouched: they captured their requests and
        threshold when they popped.  The deadline ticker re-reads
        ``policy.flush_interval()`` and ``max_delay_s`` every iteration,
        so the new deadline takes hold within one old tick.
        """
        old = self.policy
        old.validate_update(policy)
        self.policy = policy
        full = self.batcher.rethreshold()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                "policy_update",
                cat="control",
                target_batch=policy.target_batch,
                max_delay_ms=policy.max_delay_s * 1e3,
                placement=policy.placement_name(),
                made_full=len(full),
            )
        for bucket in full:
            self._spawn_flush(bucket, "full")
        return old

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def factor(self, a: np.ndarray, **kwargs) -> np.ndarray:
        """Factor one SPD matrix; resolves to its ``(n, n)`` lower factor."""
        return await self.submit("factor", a, **kwargs)

    async def solve(self, a: np.ndarray, b: np.ndarray, **kwargs) -> np.ndarray:
        """Solve ``A x = b`` for one SPD matrix; resolves to ``x``."""
        return await self.submit("solve", a, b, **kwargs)

    async def submit(
        self,
        kind: str,
        a: np.ndarray,
        b: np.ndarray | None = None,
        tier: str | None = None,
        tenant: str | None = None,
    ) -> np.ndarray:
        """Queue one request and await its result.

        ``tier``/``tenant`` tag the request for the admission layer
        (:mod:`repro.serve.admission`); without an attached controller
        they are recorded in traces but carry no policy weight.
        """
        # The tracer's clock is time.monotonic — the same clock asyncio's
        # loop.time() reads — so this timestamp anchors the request span.
        t_submit = time.monotonic()
        tracer = self.tracer
        a, b = self._validate(kind, a, b)
        n = a.shape[0]
        admission = self.admission
        if admission is not None:
            tier, tenant = admission.resolve(tier, tenant)
        if self._closed:
            raise ServiceClosed("broker is closed")
        if self.recorder is not None:
            # A trace records *offered* load: shed requests are arrivals
            # too, so the hook sits ahead of the queue-cap check.
            nrhs = 0 if b is None else (1 if b.ndim == 1 else b.shape[1])
            self.recorder.record(
                kind, n, nrhs=nrhs, shard=self.shard_id, tier=tier, tenant=tenant
            )
        await self.start()
        if admission is not None:
            try:
                admission.check_quota(tier, tenant)
            except QuotaExceeded:
                self._account_shed(n, tier, tenant, reason="quota")
                raise
        if self.batcher.pending >= self.policy.max_queue_depth:
            victim = (
                admission.victim(self.batcher.queued(), tier)
                if admission is not None
                else None
            )
            if victim is None:
                # No cheaper lower-tier work to sacrifice: the arrival
                # itself is shed, tagged with its size bucket and tier.
                self._account_shed(n, tier, tenant, reason="backpressure")
                raise ServiceOverloaded(
                    f"queue depth {self.batcher.pending} at its "
                    f"{self.policy.max_queue_depth}-request cap; request shed"
                )
            # Cost-based preemption: drop the cheapest, lowest-tier
            # queued request to admit the more important arrival.
            self.batcher.discard(victim)
            self._release_lease(victim)
            self.metrics.record_shed(
                shard=self.shard_id,
                n=victim.n,
                tier=victim.tier,
                tenant=victim.tenant,
            )
            if tracer.enabled:
                tracer.instant(
                    "shed",
                    cat="serve",
                    reason="preempted",
                    queue_depth=self.batcher.pending,
                    n=victim.n,
                    tier=victim.tier,
                    tenant=victim.tenant,
                )
            if not victim.future.done():
                victim.future.set_exception(
                    ServiceOverloaded(
                        f"{victim.tier} request (n={victim.n}, tenant "
                        f"{victim.tenant!r}) shed to admit a {tier} arrival"
                    )
                )

        loop = asyncio.get_running_loop()
        self._seq += 1
        request = PendingRequest(
            seq=self._seq,
            kind=kind,
            a=a,
            b=b,
            future=loop.create_future(),
            enqueued_at=loop.time(),
            submitted_at=t_submit,
        )
        if tier is not None:
            request.tier = tier
        if tenant is not None:
            request.tenant = tenant
        if admission is not None:
            admission.stamp(request)
        stage_t0 = time.monotonic()
        bucket = self.batcher.add(request)
        if self._stager is not None:
            # The add staged the payload into shared memory (or fell
            # back); the span is the coalescing write itself.
            if request.lease is not None:
                self.metrics.record_arena_stage(request.lease.nbytes)
            else:
                self.metrics.record_arena_stage_fallback()
            if tracer.enabled:
                tracer.record(
                    "stage",
                    stage_t0,
                    tracer.now(),
                    cat="request",
                    request=request.seq,
                    n=request.n,
                    staged=request.lease is not None,
                )
        self.metrics.record_submit(self.batcher.pending)
        if admission is not None:
            self.metrics.record_tier_submit(request.tier, request.tenant)
        if tracer.enabled:
            tracer.record(
                "submit",
                t_submit,
                tracer.now(),
                cat="request",
                request=request.seq,
                n=request.n,
                kind=kind,
                queue_depth=self.batcher.pending,
            )
        if bucket.full:
            self._spawn_flush(bucket, "full")
        return await self._await_result(request)

    def _account_shed(
        self, n: int, tier: str | None, tenant: str | None, reason: str
    ) -> None:
        """Metrics and tracing for one shed arrival (never admitted)."""
        tiered = self.admission is not None and tier is not None
        self.metrics.record_submit(self.batcher.pending)
        if tiered:
            self.metrics.record_tier_submit(tier, tenant)
        self.metrics.record_shed(
            shard=self.shard_id,
            n=n,
            tier=tier if tiered else None,
            tenant=tenant if tiered else None,
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                "shed",
                cat="serve",
                reason=reason,
                queue_depth=self.batcher.pending,
                n=n,
                **({"tier": tier, "tenant": tenant} if tier else {}),
            )

    def _release_lease(self, request: PendingRequest) -> None:
        """Return one request's arena slot (idempotent, fallback-safe)."""
        if self._stager is not None and self._stager.release(request.lease):
            self.metrics.record_arena_release()

    def _validate(self, kind, a, b):
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        a = np.array(a, copy=True)  # decouple from caller mutation
        if a.ndim != 2 or a.shape[0] != a.shape[1] or a.shape[0] == 0:
            raise ValueError(f"expected one square (n, n) matrix, got shape {a.shape}")
        if kind == "solve":
            if b is None:
                raise ValueError("solve requests need a right-hand side")
            b = np.array(b, copy=True)
            if b.ndim not in (1, 2) or b.shape[0] != a.shape[0]:
                raise ValueError(
                    f"rhs shape {b.shape} incompatible with matrix {a.shape}; "
                    "expected (n,) or (n, nrhs)"
                )
        elif b is not None:
            raise ValueError("factor requests take no right-hand side")
        return a, b

    async def _await_result(self, request: PendingRequest) -> np.ndarray:
        timeout = self.policy.request_timeout_s
        if timeout is None:
            # Shielded: cancelling the submit coroutine (a hedge race
            # cancelling its loser) must detach the awaiter, not yank the
            # request future out of its bucket — the request still flushes
            # and is accounted for, keeping conservation exact.
            return await asyncio.shield(request.future)
        try:
            return await asyncio.wait_for(asyncio.shield(request.future), timeout)
        except asyncio.TimeoutError:
            if self.batcher.discard(request):
                self._release_lease(request)
                request.future.cancel()
                self.metrics.record_timeout()
                if self.admission is not None:
                    self.metrics.record_tier_failure(request.tier)
                tracer = self.tracer
                if tracer.enabled:
                    tracer.instant(
                        "timeout",
                        cat="request",
                        request=request.seq,
                        n=request.n,
                    )
                raise RequestTimeout(
                    f"request (n={request.n}, {request.kind}) expired after "
                    f"{timeout}s waiting for its bucket to flush"
                ) from None
            # Already flushed: the result lands momentarily; honour it.
            return await request.future

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _spawn_flush(self, bucket: SizeBucket, reason: str) -> None:
        # With admission attached, a flush takes at most one threshold's
        # worth of requests in weighted-fair order (ascending vft), so a
        # hot tenant's backlog cannot occupy every slot of every flush;
        # leftovers keep their bucket and flush next.  Without admission
        # the whole bucket drains, as ever.
        limit = bucket.threshold if self.admission is not None else None
        while True:
            requests = self.batcher.pop(bucket.n, limit=limit)
            if not requests:
                return
            if self.admission is not None:
                self.admission.advance(max(r.vft for r in requests))
            self._flushing.update(requests)
            task = asyncio.get_running_loop().create_task(
                self._run_flush(requests, reason, bucket.threshold)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            if limit is None or not bucket.full:
                return

    async def _run_flush(
        self, requests: list[PendingRequest], reason: str, threshold: int
    ) -> None:
        try:
            await self._run_flush_inner(requests, reason, threshold)
        finally:
            self._flushing.difference_update(requests)

    async def _run_flush_inner(
        self, requests: list[PendingRequest], reason: str, threshold: int
    ) -> None:
        loop = asyncio.get_running_loop()
        tracer = self.tracer
        # Coalesce latency is the time a request spent waiting to be
        # batched — measured at flush start, before the numeric work.
        flush_started = loop.time()
        waits = [flush_started - r.enqueued_at for r in requests]
        if tracer.enabled:
            for r in requests:
                tracer.record(
                    "coalesce",
                    r.enqueued_at,
                    flush_started,
                    cat="request",
                    request=r.seq,
                    n=r.n,
                )
        try:
            report = await loop.run_in_executor(
                None, lambda: self.executor.execute(requests, reason, threshold)
            )
        except Exception as exc:  # kernel/codegen failure: fail the bucket
            for request in requests:
                self._release_lease(request)
                if not request.future.done():
                    request.future.set_exception(exc)
                    self.metrics.record_failure()
            if tracer.enabled:
                tracer.record(
                    "flush",
                    flush_started,
                    tracer.now(),
                    cat="serve",
                    track=f"bucket n={requests[0].n}",
                    reason=reason,
                    size=len(requests),
                    error=type(exc).__name__,
                )
            return
        self._scatter(report, waits, flush_started)

    def _scatter(
        self,
        report: FlushReport,
        waits: list[float],
        flush_started: float | None = None,
    ) -> None:
        tracer = self.tracer
        scatter_t0 = tracer.now() if tracer.enabled else 0.0
        tiered = self.admission is not None
        service_ms = report.service_s * 1e3 if report.service_s else None
        for i, (request, outcome) in enumerate(report.outcomes):
            # Release first, listener or not: the slot's work is done
            # either way, and conservation counts every staged slot.
            self._release_lease(request)
            if request.future.done():  # timed out mid-flight; nobody listens
                continue
            if isinstance(outcome, Exception):
                request.future.set_exception(outcome)
                self.metrics.record_failure()
                if tiered:
                    self.metrics.record_tier_failure(request.tier)
            else:
                request.future.set_result(outcome)
                self.metrics.record_completion()
                if tiered:
                    wait = waits[i] if i < len(waits) else None
                    self.metrics.record_tier_completion(
                        request.tier,
                        request.tenant,
                        wait_ms=None if wait is None else wait * 1e3,
                        service_ms=service_ms,
                    )
        for i in range(report.retried):
            self.metrics.record_retry(rescued=i < report.rescued)
        # Copy bill of this flush (pickle/materialize payload bytes) and
        # the pool's high-water marks.  Recorded for *every* backend —
        # that is what lets a replay report compare an arena cell's
        # fallback bytes against its pickle sibling directly.
        if report.bytes_copied:
            self.metrics.record_arena_fallback_bytes(report.bytes_copied)
        if self._stager is not None:
            self.metrics.record_arena_pool(
                hwm_bytes=self._stager.hwm_bytes,
                generation_bumps=self._stager.generation_bumps,
            )
        self.metrics.record_flush(
            size=report.size,
            threshold=report.threshold,
            reason=report.reason,
            gflops=report.gflops,
            wait_times_s=waits,
            service_s=report.service_s,
            shadow_checked=report.shadow_checked,
            shadow_mismatch=report.shadow_mismatch,
        )
        if tracer.enabled:
            self._trace_flush(report, flush_started, scatter_t0, tracer)

    def _trace_flush(
        self,
        report: FlushReport,
        flush_started: float | None,
        scatter_t0: float,
        tracer,
    ) -> None:
        """Emit the bucket-track spans and each request's stage chain."""
        scatter_t1 = tracer.now()
        if flush_started is None:  # direct _scatter call without a window
            flush_started = scatter_t0
        backend_t0, backend_t1 = report.backend_window or (flush_started, scatter_t0)
        track = f"bucket n={report.n}"
        common = {"reason": report.reason, "size": report.size, "n": report.n}
        tracer.record(
            "flush",
            flush_started,
            scatter_t1,
            cat="serve",
            track=track,
            fill=report.fill,
            gflops=report.gflops,
            backend=report.backend,
            **common,
        )
        tracer.record(
            "backend", backend_t0, backend_t1, cat="serve", track=track, **common
        )
        tracer.record(
            "scatter", scatter_t0, scatter_t1, cat="serve", track=track, **common
        )
        # The same windows again, once per request, so every request's
        # async lane shows its full submit→...→scatter story.
        for request, outcome in report.outcomes:
            rid = request.seq
            failed = isinstance(outcome, Exception)
            tracer.record(
                "flush", flush_started, scatter_t1, cat="request", request=rid
            )
            tracer.record(
                "backend", backend_t0, backend_t1, cat="request", request=rid
            )
            tracer.record(
                "scatter", scatter_t0, scatter_t1, cat="request", request=rid
            )
            tracer.record(
                "request",
                request.submitted_at or request.enqueued_at,
                scatter_t1,
                cat="request",
                request=rid,
                n=request.n,
                kind=request.kind,
                outcome="error" if failed else "ok",
            )

    # ------------------------------------------------------------------
    # Telemetry snapshots
    # ------------------------------------------------------------------

    def emit_snapshot(self) -> None:
        """One sample of queue depth, bucket fill, and request counters.

        Routed through the installed tracer's counter channel; a no-op
        while tracing is disabled.  The broker's snapshot task calls this
        every ``policy.snapshot_interval_s``; callers may also sample on
        their own schedule.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        c = self.metrics.counters
        tracer.counter("serve.queue_depth", {"pending": float(self.batcher.pending)})
        tracer.counter(
            "serve.requests",
            {
                "submitted": float(c["submitted"]),
                "completed": float(c["completed"]),
                "failed": float(c["failed"]),
                "shed": float(c["shed"]),
            },
        )
        tracer.counter("serve.flushes", {"flushes": float(c["flushes"])})
        # Windowed rates between consecutive snapshots, derived through
        # Snapshot.delta rather than ad-hoc counter arithmetic.
        snap = self.metrics.snapshot(
            t=tracer.now(), queue_depth=self.batcher.pending
        )
        if self._last_snapshot is not None:
            window = snap.delta(self._last_snapshot)
            if window.dt > 0:
                tracer.counter(
                    "serve.rates",
                    {
                        "submitted_per_s": window.submitted_rate,
                        "completed_per_s": window.completed_rate,
                        "shed_per_s": window.shed_rate,
                        "wait_mean_ms": window.wait_mean_ms,
                    },
                )
        self._last_snapshot = snap
        for n, (pending, threshold) in sorted(self.batcher.fill_levels().items()):
            tracer.counter(
                f"serve.bucket_fill[n={n}]",
                {"fill": pending / threshold if threshold else 0.0},
            )

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.policy.snapshot_interval_s)
            self.emit_snapshot()

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.policy.flush_interval())
            now = asyncio.get_running_loop().time()
            for bucket in self.batcher.pop_due(now, self.policy.max_delay_s):
                self._flushing.update(bucket.requests)
                task = asyncio.get_running_loop().create_task(
                    self._run_flush(bucket.requests, "deadline", bucket.threshold)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
