"""Service metrics: counters and histograms for the adaptive batcher.

Everything the batch-size/latency tradeoff turns on is observable here:
how full batches were when they flushed, how long requests waited to be
coalesced, how deep the queue ran, and what the performance model says
each flushed batch was worth.  The report doubles as the accounting check
a service needs — every submitted request must end up completed, failed,
or shed (``unaccounted == 0``).

Exported two ways: :meth:`ServeMetrics.as_dict` for JSON scraping and
:meth:`ServeMetrics.report` as a human-readable table via
:mod:`repro.utils.tables`.

Lifetime aggregates answer "how did the run go"; anything *reacting* to
the service (the online controller, the broker's periodic telemetry
snapshots) needs windowed rates instead.  :meth:`ServeMetrics.snapshot`
captures a cheap point-in-time :class:`Snapshot`, and
:meth:`Snapshot.delta` turns two of them into a :class:`SnapshotDelta` —
the per-window view (rates, window means, deadline fraction) that both
consumers read instead of re-deriving rates from raw counters by hand.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field

from repro.obs.sketch import QuantileSketch


class Histogram:
    """Bounded-memory sample histogram with deterministic decimation.

    Keeps at most ``max_samples`` observations; when full, every second
    retained sample is dropped and only every ``stride``-th future
    observation is kept.  Totals and extrema stay exact; percentiles are
    computed from the retained (uniformly thinned) sample.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be at least 2, got {max_samples}")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self._samples.append(value)
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the retained sample."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = p / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (and return it).

        Count, total, and extrema stay exact, so multi-shard or
        multi-worker aggregation loses nothing an alarm would fire on.
        The retained samples are first brought to a *common stride*: the
        finer-grained side is thinned until one retained sample stands
        for the same number of source observations on both sides, so the
        merged percentile weights each source proportionally to its true
        count (the old concatenate-and-rethin overweighted whichever
        side had been decimated less).  Residual approximation, stated
        honestly: strides are powers of two, so a source whose count is
        not a stride multiple is over-represented by up to one stride's
        worth of observations, and thinning keeps the earliest sample of
        each stride window — the same bias decimation itself already
        carries.  For latency families that need sound cross-shard
        tails, use :class:`~repro.obs.sketch.QuantileSketch`, whose
        merge is lossless.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"can only merge Histogram, got {type(other).__name__}")
        self.count += other.count
        self.total += other.total
        if other.count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        # Strides are powers of two (they only ever double), so the
        # ratio to the common stride is an exact thinning factor.
        stride = max(self._stride, other._stride)
        merged = (
            self._samples[:: stride // self._stride]
            + other._samples[:: stride // other._stride]
        )
        while len(merged) >= self.max_samples:
            merged = merged[::2]
            stride *= 2
        self._samples = merged
        self._stride = stride
        self._skip = 0
        return self

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "min": self.min,
            "max": self.max,
        }


#: Counter names in report order.
_COUNTERS = (
    "submitted",
    "completed",
    "failed",
    "timed_out",
    "shed",
    "retried",
    "rescued",
    "shadow_checked",
    "shadow_mismatch",
    "flushes",
    "flushes_full",
    "flushes_deadline",
    "flushes_drain",
)

#: Histogram names in report order, with display labels.
_HISTOGRAMS = (
    ("queue_depth", "queue depth (at submit)"),
    ("batch_size", "batch size (per flush)"),
    ("batch_fill", "batch fill ratio"),
    ("coalesce_latency_ms", "coalesce latency (ms)"),
    ("flush_service_ms", "service time (ms, per flush)"),
    ("flush_gflops", "modelled GFLOP/s (per flush)"),
)

#: Latency families backed by :class:`~repro.obs.sketch.QuantileSketch`
#: instead of the reservoir :class:`Histogram`: their tails (p99, p999)
#: are what SLOs gate on, so they need lossless cross-shard merges and
#: a bounded relative-error guarantee.  Non-latency families keep the
#: reservoir — exact moments, approximate mid-distribution percentiles.
_SKETCH_FAMILIES = frozenset({"coalesce_latency_ms", "flush_service_ms"})


#: Dynamic per-tier family names: ``tier_{tier}_{family}`` for the two
#: sketch-backed latency families, created lazily on first observation so
#: tier-free brokers carry no extra state.  They live in the ordinary
#: ``histograms`` dict — the SLO monitor's stream lookup, snapshotting,
#: and the lossless cross-shard merge all apply unchanged.
def tier_family_name(tier: str, family: str) -> str:
    return f"tier_{tier}_{family}"


def _make_family(name: str):
    """The right distribution type for one histogram family."""
    if name in _SKETCH_FAMILIES or any(
        name.endswith(f"_{family}") for family in _SKETCH_FAMILIES
    ):
        return QuantileSketch()
    return Histogram()


def _empty_like(hist):
    """A fresh, empty distribution matching ``hist``'s type and layout."""
    if isinstance(hist, QuantileSketch):
        return QuantileSketch(relative_accuracy=hist.relative_accuracy)
    return Histogram(max_samples=hist.max_samples)


class ServeMetrics:
    """Aggregated counters and distributions for one broker's lifetime."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {name: 0 for name in _COUNTERS}
        self.histograms: dict = {
            name: _make_family(name) for name, _ in _HISTOGRAMS
        }
        #: Sheds broken out by the broker shard that refused the request
        #: (``shard_id`` of the fabric, see :mod:`repro.serve.shard`).
        #: Empty for a standalone broker; the values always sum to at most
        #: ``counters["shed"]`` (exactly, when every shed was attributed).
        self.shed_by_shard: dict[int, int] = {}
        #: Sheds broken out by the refused request's size bucket (``n``) —
        #: cost-based admission needs to know *what* was dropped, not just
        #: how much.
        self.shed_by_bucket: dict[int, int] = {}
        #: Per-tenant offered/served/refused attribution
        #: (:mod:`repro.serve.admission`): fairness gates compute Jain's
        #: index over ``completed_by_tenant``.  Empty without tiers.
        self.submitted_by_tenant: dict[str, int] = {}
        self.completed_by_tenant: dict[str, int] = {}
        self.shed_by_tenant: dict[str, int] = {}
        #: Tier names that have recorded at least one event, in first-seen
        #: order (dict-as-ordered-set) — the Prometheus tier page and the
        #: report iterate this instead of guessing from counter names.
        self.tier_names: dict[str, None] = {}
        #: Zero-copy data-plane accounting (:mod:`repro.serve.arena`).
        #: Kept out of ``counters`` on purpose: the legacy counter dict
        #: (and every dashboard scraping it) is n-request accounting,
        #: while this block is byte/slot accounting with its own
        #: conservation invariant (``slots_staged == slots_released``
        #: after a drain) and its own ``repro_arena_*`` Prometheus
        #: family.  ``bytes_copied_fallback`` is charged on *every*
        #: backend — it is the pickle/materialize copy bill an arena run
        #: is measured against.
        self.arena: dict[str, int] = {
            "slots_staged": 0,
            "slots_released": 0,
            "stage_fallbacks": 0,
            "bytes_staged": 0,
            "bytes_copied_fallback": 0,
            "hwm_bytes": 0,
            "generation_bumps": 0,
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_submit(self, queue_depth: int) -> None:
        self.counters["submitted"] += 1
        self.histograms["queue_depth"].observe(queue_depth)

    def record_shed(
        self,
        shard: int | None = None,
        n: int | None = None,
        tier: str | None = None,
        tenant: str | None = None,
    ) -> None:
        """One refused request, attributed to where and what it was.

        ``n`` tags the request's size bucket (every broker shed path
        knows the matrix dimension before rejecting); ``tier``/``tenant``
        are stamped by the admission layer.
        """
        self.counters["shed"] += 1
        if shard is not None:
            self.shed_by_shard[shard] = self.shed_by_shard.get(shard, 0) + 1
        if n is not None:
            self.shed_by_bucket[n] = self.shed_by_bucket.get(n, 0) + 1
        if tier is not None:
            self._tier_counter(tier, "shed")
        if tenant is not None:
            self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1

    def record_completion(self) -> None:
        self.counters["completed"] += 1

    def record_failure(self) -> None:
        self.counters["failed"] += 1

    # ------------------------------------------------------------------
    # Per-tier recording (the admission layer's attribution plane)
    # ------------------------------------------------------------------

    def _tier_counter(self, tier: str, event: str, by: int = 1) -> None:
        self.tier_names.setdefault(tier, None)
        key = f"tier_{tier}_{event}"
        self.counters[key] = self.counters.get(key, 0) + by

    def tier_family(self, tier: str, family: str):
        """Get-or-create one tier's sketch for a latency ``family``."""
        self.tier_names.setdefault(tier, None)
        name = tier_family_name(tier, family)
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = _make_family(name)
        return hist

    def record_tier_submit(self, tier: str, tenant: str) -> None:
        self._tier_counter(tier, "submitted")
        self.submitted_by_tenant[tenant] = (
            self.submitted_by_tenant.get(tenant, 0) + 1
        )

    def record_tier_completion(
        self,
        tier: str,
        tenant: str,
        wait_ms: float | None = None,
        service_ms: float | None = None,
    ) -> None:
        self._tier_counter(tier, "completed")
        self.completed_by_tenant[tenant] = (
            self.completed_by_tenant.get(tenant, 0) + 1
        )
        if wait_ms is not None:
            self.tier_family(tier, "coalesce_latency_ms").observe(wait_ms)
        if service_ms is not None:
            self.tier_family(tier, "flush_service_ms").observe(service_ms)

    def record_tier_failure(self, tier: str) -> None:
        self._tier_counter(tier, "failed")

    def tier_counter(self, tier: str, event: str) -> int:
        return self.counters.get(f"tier_{tier}_{event}", 0)

    # ------------------------------------------------------------------
    # Arena recording (the zero-copy data plane's accounting)
    # ------------------------------------------------------------------

    def record_arena_stage(self, nbytes: int) -> None:
        """One request staged into a shared-memory slot at enqueue time."""
        self.arena["slots_staged"] += 1
        self.arena["bytes_staged"] += int(nbytes)

    def record_arena_stage_fallback(self) -> None:
        """One request the arena could not stage (disabled/unavailable)."""
        self.arena["stage_fallbacks"] += 1

    def record_arena_release(self) -> None:
        """One staged slot returned to its pool (scatter or failure path)."""
        self.arena["slots_released"] += 1

    def record_arena_fallback_bytes(self, nbytes: int) -> None:
        """Flush-payload bytes moved by copy/pickle instead of the arena."""
        self.arena["bytes_copied_fallback"] += int(nbytes)

    def record_arena_pool(self, hwm_bytes: int, generation_bumps: int) -> None:
        """Mirror the pool's monotonic high-water marks (idempotent)."""
        self.arena["hwm_bytes"] = max(self.arena["hwm_bytes"], int(hwm_bytes))
        self.arena["generation_bumps"] = max(
            self.arena["generation_bumps"], int(generation_bumps)
        )

    @property
    def arena_leaked(self) -> int:
        """Slots staged but never released — 0 for any drained broker."""
        return self.arena["slots_staged"] - self.arena["slots_released"]

    def arena_summary(self) -> dict:
        """The ``arena`` block of :meth:`as_dict` and the replay report."""
        return {**self.arena, "leaked": self.arena_leaked}

    def record_timeout(self) -> None:
        # A timeout is a failure for accounting purposes; ``timed_out``
        # breaks out how many of the failures were latency-budget expiries.
        self.counters["failed"] += 1
        self.counters["timed_out"] += 1

    def record_retry(self, rescued: bool) -> None:
        self.counters["retried"] += 1
        if rescued:
            self.counters["rescued"] += 1

    def record_flush(
        self,
        size: int,
        threshold: int,
        reason: str,
        gflops: float,
        wait_times_s: list[float] | None = None,
        service_s: float | None = None,
        shadow_checked: int = 0,
        shadow_mismatch: int = 0,
    ) -> None:
        # Validate before mutating anything: an unknown reason must leave
        # every counter and histogram exactly as it found them.
        key = f"flushes_{reason}"
        if key not in self.counters:
            raise ValueError(f"unknown flush reason {reason!r}")
        self.counters["flushes"] += 1
        self.counters[key] += 1
        self.counters["shadow_checked"] += shadow_checked
        self.counters["shadow_mismatch"] += shadow_mismatch
        self.histograms["batch_size"].observe(size)
        self.histograms["batch_fill"].observe(size / threshold if threshold else 0.0)
        self.histograms["flush_gflops"].observe(gflops)
        if service_s is not None:
            self.histograms["flush_service_ms"].observe(service_s * 1e3)
        for wait in wait_times_s or ():
            self.histograms["coalesce_latency_ms"].observe(wait * 1e3)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "ServeMetrics") -> "ServeMetrics":
        """Fold ``other``'s counters and histograms into this one in place.

        Counters add exactly.  Latency families are
        :class:`~repro.obs.sketch.QuantileSketch` instances and merge
        *losslessly* — the fabric's merged p99 is bit-identical to the
        sketch of the concatenated stream; reservoir families merge via
        :meth:`Histogram.merge` (exact count/total/extrema, approximate
        percentiles).  This is the fabric-level aggregation primitive:
        the merged snapshot of N shards is
        ``ServeMetrics.merged(shard_metrics)``, and accounting
        (``unaccounted``) composes — a fabric of clean shards is clean.
        """
        if not isinstance(other, ServeMetrics):
            raise TypeError(
                f"can only merge ServeMetrics, got {type(other).__name__}"
            )
        for name, count in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + count
        for name, hist in other.histograms.items():
            if name in self.histograms:
                self.histograms[name].merge(hist)
            else:
                self.histograms[name] = _empty_like(hist).merge(hist)
        for shard, count in other.shed_by_shard.items():
            self.shed_by_shard[shard] = self.shed_by_shard.get(shard, 0) + count
        for n, count in other.shed_by_bucket.items():
            self.shed_by_bucket[n] = self.shed_by_bucket.get(n, 0) + count
        for ours, theirs in (
            (self.submitted_by_tenant, other.submitted_by_tenant),
            (self.completed_by_tenant, other.completed_by_tenant),
            (self.shed_by_tenant, other.shed_by_tenant),
        ):
            for tenant, count in theirs.items():
                ours[tenant] = ours.get(tenant, 0) + count
        for tier in other.tier_names:
            self.tier_names.setdefault(tier, None)
        for key, value in other.arena.items():
            # Sums compose for the fabric view: per-shard pools are
            # disjoint, so the fabric high-water mark is the shard sum.
            self.arena[key] = self.arena.get(key, 0) + value
        return self

    @classmethod
    def merged(cls, parts) -> "ServeMetrics":
        """A fresh ServeMetrics equal to the element-wise merge of ``parts``."""
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def unaccounted(self) -> int:
        """Requests submitted but neither completed, failed, nor shed.

        Zero for a drained broker; anything else means a future was lost.
        (Timeouts are included in ``failed``.)
        """
        c = self.counters
        return c["submitted"] - c["completed"] - c["failed"] - c["shed"]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(
        self, t: float | None = None, queue_depth: int = 0
    ) -> "Snapshot":
        """A cheap point-in-time capture for windowed-rate computation.

        Copies the counters, each histogram's exact ``(count, total)``
        pair, and the per-shard shed attribution — O(#families), no
        sample copying.  ``t`` defaults to ``time.monotonic()`` (the
        tracer/event-loop clock); ``queue_depth`` is the *instantaneous*
        pending-request count the caller observes, since a lifetime
        aggregate cannot recover it.
        """
        return Snapshot(
            t=time.monotonic() if t is None else t,
            counters=dict(self.counters),
            hist_stats={
                name: (hist.count, hist.total)
                for name, hist in self.histograms.items()
            },
            queue_depth=queue_depth,
            shed_by_shard=dict(self.shed_by_shard),
        )

    def as_dict(self) -> dict:
        out = {
            "counters": dict(self.counters),
            "unaccounted": self.unaccounted,
            "histograms": {
                name: hist.summary() for name, hist in self.histograms.items()
            },
        }
        if self.shed_by_shard:
            # JSON object keys are strings; sort for stable serialization.
            out["shed_by_shard"] = {
                str(shard): count
                for shard, count in sorted(self.shed_by_shard.items())
            }
        if self.shed_by_bucket:
            out["shed_by_bucket"] = {
                str(n): count
                for n, count in sorted(self.shed_by_bucket.items())
            }
        if self.tier_names:
            out["tiers"] = self.tier_summary()
        if any(self.arena.values()):
            out["arena"] = self.arena_summary()
        return out

    def tier_summary(self) -> dict:
        """Per-tier counters/tails plus per-tenant attribution, for JSON.

        The replay harness embeds this as each run's ``tiers`` block; the
        ``replay-check --tiers`` gate reads the per-tier p99s and the
        per-tenant completions back out of it.
        """
        tiers: dict = {}
        for tier in self.tier_names:
            entry: dict = {
                "submitted": self.tier_counter(tier, "submitted"),
                "completed": self.tier_counter(tier, "completed"),
                "failed": self.tier_counter(tier, "failed"),
                "shed": self.tier_counter(tier, "shed"),
            }
            for family, label in (
                ("coalesce_latency_ms", "coalesce"),
                ("flush_service_ms", "service"),
            ):
                hist = self.histograms.get(tier_family_name(tier, family))
                if hist is not None and hist.count:
                    entry[f"{label}_p50_ms"] = hist.percentile(50)
                    entry[f"{label}_p99_ms"] = hist.percentile(99)
            tiers[tier] = entry
        out: dict = {"by_tier": tiers}
        for name, mapping in (
            ("submitted_by_tenant", self.submitted_by_tenant),
            ("completed_by_tenant", self.completed_by_tenant),
            ("shed_by_tenant", self.shed_by_tenant),
        ):
            if mapping:
                out[name] = dict(sorted(mapping.items()))
        return out

    def as_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def report(self) -> str:
        """Two-table human-readable summary (counters, then distributions)."""
        from repro.utils.tables import format_table

        counter_rows = [[name, count] for name, count in self.counters.items()]
        counter_rows.append(["unaccounted", self.unaccounted])
        counters = format_table(["counter", "value"], counter_rows)

        dist_rows = []
        for name, label in _HISTOGRAMS:
            h = self.histograms[name]
            dist_rows.append(
                [label, h.count, h.mean, h.percentile(50), h.percentile(95), h.max]
            )
        dists = format_table(
            ["metric", "count", "mean", "p50", "p95", "max"], dist_rows
        )
        return f"{counters}\n\n{dists}"


@dataclass(frozen=True)
class Snapshot:
    """Point-in-time capture of one :class:`ServeMetrics`.

    Histograms are reduced to their exact ``(count, total)`` pairs —
    enough for window means, which is what rate consumers need; window
    percentiles would require retaining samples per window and are out
    of scope.  Produced by :meth:`ServeMetrics.snapshot`; consumed in
    pairs via :meth:`delta`.
    """

    t: float
    counters: dict[str, int]
    hist_stats: dict[str, tuple[int, float]]
    queue_depth: int = 0
    shed_by_shard: dict[int, int] = field(default_factory=dict)

    def delta(self, prev: "Snapshot") -> "SnapshotDelta":
        """The window between ``prev`` and this snapshot.

        Counter deltas are clamped at zero: a counter that appears to run
        backwards (a restarted shard re-registering, a wrapped foreign
        gauge fed through the parser) must read as "no events this
        window", never as a negative rate.  An empty or inverted window
        (``dt <= 0``) keeps its deltas but reports every rate as 0.0
        rather than dividing by zero.
        """
        if not isinstance(prev, Snapshot):
            raise TypeError(f"expected Snapshot, got {type(prev).__name__}")
        counters = {
            name: max(0, count - prev.counters.get(name, 0))
            for name, count in self.counters.items()
        }
        hists = {}
        for name, (count, total) in self.hist_stats.items():
            pc, pt = prev.hist_stats.get(name, (0, 0.0))
            dc = count - pc
            # Clamp wrapped windows whole: a negative sample-count delta
            # invalidates the paired total as well.
            hists[name] = (max(0, dc), total - pt if dc > 0 else 0.0)
        shed_by_shard = {
            shard: max(0, count - prev.shed_by_shard.get(shard, 0))
            for shard, count in self.shed_by_shard.items()
        }
        shed_by_shard = {s: c for s, c in shed_by_shard.items() if c}
        return SnapshotDelta(
            dt=self.t - prev.t,
            counters=counters,
            hists=hists,
            queue_depth=self.queue_depth,
            queue_delta=self.queue_depth - prev.queue_depth,
            shed_by_shard=shed_by_shard,
        )


@dataclass(frozen=True)
class SnapshotDelta:
    """One observation window: counter deltas and windowed means.

    This is the controller's entire view of the service, and therefore
    the unit recorded in its decision journal — :meth:`to_dict` /
    :meth:`from_dict` round-trip every non-zero entry exactly (zero
    counts are elided for journal compactness; readers use ``.get`` with
    zero defaults), so a journal replay feeds the strategy observations
    indistinguishable from the live ones.
    """

    dt: float
    counters: dict[str, int]
    hists: dict[str, tuple[int, float]]
    queue_depth: int = 0
    queue_delta: int = 0
    shed_by_shard: dict[int, int] = field(default_factory=dict)
    #: SLO burn rates by objective name (see :mod:`repro.obs.slo`),
    #: stamped onto the window by a controller with an attached
    #: :class:`~repro.obs.slo.SloMonitor`.  Empty without one.  Part of
    #: the journaled observation, so strategies reading it stay pure
    #: functions of the window and journal replay stays deterministic.
    slo: dict[str, float] = field(default_factory=dict)

    def rate(self, name: str) -> float:
        """Window rate (events/s) of one counter; 0.0 for an empty window."""
        if self.dt <= 0:
            return 0.0
        return self.counters.get(name, 0) / self.dt

    def mean(self, name: str) -> float:
        """Window mean of one histogram; 0.0 when nothing was observed."""
        count, total = self.hists.get(name, (0, 0.0))
        return total / count if count > 0 else 0.0

    @property
    def submitted_rate(self) -> float:
        return self.rate("submitted")

    @property
    def completed_rate(self) -> float:
        return self.rate("completed")

    @property
    def shed_rate(self) -> float:
        return self.rate("shed")

    @property
    def flush_rate(self) -> float:
        return self.rate("flushes")

    @property
    def batch_mean(self) -> float:
        """Mean flushed batch size this window."""
        return self.mean("batch_size")

    @property
    def fill_mean(self) -> float:
        """Mean fill ratio (flushed size / threshold) this window."""
        return self.mean("batch_fill")

    @property
    def wait_mean_ms(self) -> float:
        """Mean coalesce latency (ms) of requests flushed this window."""
        return self.mean("coalesce_latency_ms")

    @property
    def service_mean_ms(self) -> float:
        """Mean backend service time (ms) of flushes this window."""
        return self.mean("flush_service_ms")

    @property
    def gflops_mean(self) -> float:
        return self.mean("flush_gflops")

    @property
    def deadline_frac(self) -> float:
        """Fraction of this window's flushes triggered by the deadline."""
        flushes = self.counters.get("flushes", 0)
        if flushes <= 0:
            return 0.0
        return self.counters.get("flushes_deadline", 0) / flushes

    @property
    def max_burn_rate(self) -> float:
        """The worst SLO burn rate this window (0.0 without a monitor).

        Burn 1.0 means an objective is spending its error budget exactly
        at the sustainable rate; above it the tail objective is being
        missed — a latency emergency a strategy may react to.
        """
        return max(self.slo.values(), default=0.0)

    def to_dict(self) -> dict:
        out = {
            "dt": self.dt,
            "counters": {k: v for k, v in self.counters.items() if v},
            "hists": {
                name: [count, total]
                for name, (count, total) in self.hists.items()
                if count
            },
            "queue_depth": self.queue_depth,
            "queue_delta": self.queue_delta,
        }
        if self.shed_by_shard:
            out["shed_by_shard"] = {
                str(shard): count
                for shard, count in sorted(self.shed_by_shard.items())
            }
        if self.slo:
            out["slo"] = {
                name: burn for name, burn in sorted(self.slo.items())
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotDelta":
        return cls(
            dt=float(data["dt"]),
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            hists={
                name: (int(pair[0]), float(pair[1]))
                for name, pair in data.get("hists", {}).items()
            },
            queue_depth=int(data.get("queue_depth", 0)),
            queue_delta=int(data.get("queue_delta", 0)),
            shed_by_shard={
                int(shard): int(count)
                for shard, count in data.get("shed_by_shard", {}).items()
            },
            slo={
                str(name): float(burn)
                for name, burn in data.get("slo", {}).items()
            },
        )
