"""The online policy controller: the autotuner, running at serve time.

:class:`PolicyController` closes the loop the ROADMAP left open — the
offline sweep picks kernel configurations once, but the *serving* knobs
(``target_batch``, ``max_delay_s``, shard placement) face a workload
that changes by the second.  The controller runs alongside any broker
(plain :class:`~repro.serve.broker.SolveBroker` or the sharded fabric),
and every ``interval_s`` it:

1. snapshots the broker's :class:`~repro.serve.metrics.ServeMetrics`
   and diffs it against the previous snapshot
   (:meth:`~repro.serve.metrics.Snapshot.delta`) — the observation
   window;
2. asks its strategy (:mod:`repro.serve.control.strategy`) for a knob
   proposal, clamps it to a bounded step inside hard bounds
   (:class:`~repro.serve.control.strategy.ControlBounds`);
3. applies a changed proposal through the broker's atomic
   ``update_policy`` seam (it lands at the next coalesce boundary,
   never mid-flush);
4. appends a :class:`~repro.serve.control.journal.Decision` — window,
   knobs, reason — to its journal, and emits the decision as an obs
   instant plus ``control.knobs`` counter samples.

The controller holds no hidden state: everything a decision depended on
is in the journal, which replays deterministically
(:func:`~repro.serve.control.journal.verify_journal`).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from dataclasses import replace

from repro.obs.tracer import get_tracer
from repro.serve.control.journal import (
    Decision,
    DecisionJournal,
    policy_roundtrip,
)
from repro.serve.control.strategy import (
    STRATEGIES,
    ControlBounds,
    Knobs,
    make_strategy,
)
from repro.serve.metrics import Snapshot

#: Environment knobs: ``$REPRO_SERVE_CONTROLLER`` names a strategy
#: (``aimd``/``hill``; empty, ``0``, ``off``, or ``none`` disables), and
#: ``$REPRO_SERVE_CONTROLLER_INTERVAL_MS`` overrides the decision period.
#: Every broker front end that honours ``$REPRO_SERVE_SHARDS`` honours
#: these too, so the CI matrix can run any suite under control.
CONTROLLER_ENV = "REPRO_SERVE_CONTROLLER"
CONTROLLER_INTERVAL_ENV = "REPRO_SERVE_CONTROLLER_INTERVAL_MS"

#: Default decision period.  Four broker snapshots per second is plenty
#: for convergence and cheap enough to never show up in a profile.
DEFAULT_INTERVAL_S = 0.25


class PolicyController:
    """Adapts a live broker's batching knobs from its own metrics.

    Use alongside the broker on the same event loop::

        async with SolveBroker(policy) as broker:
            async with PolicyController(broker, strategy="aimd") as ctl:
                ...  # serve traffic; ctl adjusts the policy
            ctl.journal.save("decisions.jsonl")

    For the sharded fabric the controller runs on the *caller's* loop and
    fans updates out through :meth:`ShardedBroker.update_policy`.
    ``step()`` is also callable directly (tests, replay harnesses) —
    the background task is just ``step`` on a timer.
    """

    def __init__(
        self,
        broker,
        strategy="aimd",
        interval_s: float = DEFAULT_INTERVAL_S,
        bounds: ControlBounds | None = None,
        tracer=None,
        meta: dict | None = None,
        slo_monitor=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.broker = broker
        #: Optional :class:`~repro.obs.slo.SloMonitor`: its fast burn
        #: rates are stamped onto every observation window *before* the
        #: strategy sees it — and before the window is journaled — so
        #: burn-reactive strategies replay deterministically.
        self.slo_monitor = slo_monitor
        self.bounds = bounds or ControlBounds()
        self.strategy = (
            make_strategy(strategy, bounds=self.bounds)
            if isinstance(strategy, str)
            else strategy
        )
        self.interval_s = interval_s
        self._tracer = tracer
        self._task: asyncio.Task | None = None
        self._last: Snapshot | None = None
        self.journal = DecisionJournal(
            strategy=self.strategy.name,
            initial=Knobs.from_policy(broker.policy),
            bounds=self.bounds,
            interval_s=interval_s,
            meta=dict(meta or {}),
        )

    @property
    def tracer(self):
        """The explicit tracer if one was injected, else the broker's."""
        if self._tracer is not None:
            return self._tracer
        broker_tracer = getattr(self.broker, "tracer", None)
        return broker_tracer if broker_tracer is not None else get_tracer()

    @property
    def decisions(self) -> int:
        return len(self.journal)

    @property
    def changes(self) -> int:
        return self.journal.changes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "PolicyController":
        """Start the periodic decision task (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def close(self) -> None:
        """Stop the decision task; the journal stays readable."""
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    async def __aenter__(self) -> "PolicyController":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            self.step()

    # ------------------------------------------------------------------
    # The control cycle
    # ------------------------------------------------------------------

    def step(self, now: float | None = None) -> Decision | None:
        """One observe → propose → clamp → apply → journal cycle.

        Returns the appended :class:`Decision`, or ``None`` for the
        first call (which only primes the snapshot pair) and for empty
        windows (``dt <= 0``).
        """
        t = time.monotonic() if now is None else now
        snap = self.broker.metrics.snapshot(
            t=t, queue_depth=self.broker.pending
        )
        if self._last is None:
            self._last = snap
            return None
        window = snap.delta(self._last)
        if window.dt <= 0:
            return None
        self._last = snap
        if self.slo_monitor is not None:
            burn = self.slo_monitor.burn_rates()
            if burn:
                window = replace(window, slo=burn)
        knobs = Knobs.from_policy(self.broker.policy)
        proposed, reason = self.strategy.propose(window, knobs)
        proposed = self.bounds.clamp(proposed, knobs)
        changed = proposed != knobs
        if changed:
            self.broker.update_policy(
                replace(
                    self.broker.policy,
                    target_batch=proposed.target_batch,
                    max_delay_s=proposed.max_delay_ms / 1e3,
                    placement=proposed.placement,
                )
            )
            # Journal what the next cycle will observe: the knobs as
            # they read back out of the applied policy.
            proposed = policy_roundtrip(proposed)
        decision = Decision(
            seq=len(self.journal) + 1,
            t=t,
            strategy=self.strategy.name,
            reason=reason,
            knobs=proposed,
            window=window,
            score=getattr(self.strategy, "last_score", None),
            changed=changed,
        )
        self.journal.append(decision)
        self._trace(decision)
        flight = getattr(self.slo_monitor, "flight", None)
        if flight is not None:
            flight.note("decision", **decision.to_dict())
        return decision

    def _trace(self, decision: Decision) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        tracer.instant(
            "decide",
            cat="control",
            strategy=decision.strategy,
            reason=decision.reason,
            changed=decision.changed,
            target_batch=decision.knobs.target_batch,
            max_delay_ms=decision.knobs.max_delay_ms,
        )
        values = {
            "target_batch": float(decision.knobs.target_batch),
            "max_delay_ms": float(decision.knobs.max_delay_ms),
        }
        if decision.score is not None:
            values["score"] = float(decision.score)
        tracer.counter("control.knobs", values)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """One gauge-shaped dict for Prometheus exposition and summaries."""
        knobs = self.journal.final_knobs()
        out = {
            "strategy": self.strategy.name,
            "interval_s": self.interval_s,
            "decisions": self.decisions,
            "changes": self.changes,
            "target_batch": knobs.target_batch,
            "max_delay_ms": knobs.max_delay_ms,
        }
        if knobs.placement is not None:
            out["placement"] = knobs.placement
        last_score = getattr(self.strategy, "last_score", None)
        if last_score is not None:
            out["score"] = last_score
        return out


def controller_from_env(
    broker, tracer=None, meta: dict | None = None, slo_monitor=None
):
    """A controller when ``$REPRO_SERVE_CONTROLLER`` asks for one, else ``None``.

    The serve front ends (``replay_trace``, ``run_demo``) call this so a
    CI matrix cell — or a curious operator — can put any run under
    control without changing call sites, mirroring how
    ``$REPRO_SERVE_SHARDS`` reshapes the same runs into a fabric.
    """
    name = os.environ.get(CONTROLLER_ENV, "").strip().lower()
    if not name or name in ("0", "off", "none", "false"):
        return None
    if name not in STRATEGIES:
        raise ValueError(
            f"{CONTROLLER_ENV} must be one of {STRATEGIES}, got {name!r}"
        )
    interval_s = DEFAULT_INTERVAL_S
    raw = os.environ.get(CONTROLLER_INTERVAL_ENV, "").strip()
    if raw:
        try:
            interval_s = float(raw) / 1e3
        except ValueError:
            raise ValueError(
                f"{CONTROLLER_INTERVAL_ENV} must be a number (ms), got {raw!r}"
            ) from None
        if interval_s <= 0:
            raise ValueError(
                f"{CONTROLLER_INTERVAL_ENV} must be positive, got {raw!r}"
            )
    return PolicyController(
        broker,
        strategy=name,
        interval_s=interval_s,
        tracer=tracer,
        meta=meta,
        slo_monitor=slo_monitor,
    )
