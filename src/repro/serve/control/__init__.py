"""Online adaptive policy control for the serving layer.

The control plane over :mod:`repro.serve`: a
:class:`~repro.serve.control.controller.PolicyController` watches a live
broker's metrics windows and adapts the hot
:class:`~repro.serve.policy.ServePolicy` knobs through pluggable,
deterministic strategies, journaling every decision.  See
``docs/control.md`` for the operator's view.
"""

from repro.serve.control.controller import (
    CONTROLLER_ENV,
    CONTROLLER_INTERVAL_ENV,
    DEFAULT_INTERVAL_S,
    PolicyController,
    controller_from_env,
)
from repro.serve.control.journal import (
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    Decision,
    DecisionJournal,
    policy_roundtrip,
    replay_journal,
    verify_journal,
)
from repro.serve.control.strategy import (
    STRATEGIES,
    AIMDStrategy,
    ControlBounds,
    HillClimbStrategy,
    Knobs,
    make_strategy,
)

__all__ = [
    "CONTROLLER_ENV",
    "CONTROLLER_INTERVAL_ENV",
    "DEFAULT_INTERVAL_S",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "STRATEGIES",
    "AIMDStrategy",
    "ControlBounds",
    "Decision",
    "DecisionJournal",
    "HillClimbStrategy",
    "Knobs",
    "PolicyController",
    "controller_from_env",
    "make_strategy",
    "policy_roundtrip",
    "replay_journal",
    "verify_journal",
]
