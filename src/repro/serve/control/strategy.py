"""Control strategies: pure decision rules over observation windows.

A strategy maps one :class:`~repro.serve.metrics.SnapshotDelta` (what the
service did this window) and the current :class:`Knobs` to a proposed
knob setting plus a human-readable reason.  Strategies never touch the
broker — the :class:`~repro.serve.control.controller.PolicyController`
observes, asks, clamps, applies, and journals — and they are
**deterministic functions of the observation sequence**: replaying a
decision journal re-runs the same strategy over the recorded windows and
must reproduce the identical knob sequence.  Anything wall-clock-shaped
a strategy needs is already inside the window.

Two strategies ship:

:class:`AIMDStrategy`
    The safety fallback, stateless.  Under backlog (coalesce waits far
    beyond the deadline, sheds, a deep queue) it grows ``target_batch``
    and ``max_delay_s`` multiplicatively — the serving analogue of the
    paper's result that bigger interleaved batches amortize launch
    overhead — and when the service is deadline-dominated with latency
    headroom it decays the deadline additively toward the latency floor.
    Between the two pressure thresholds lies the hysteresis band where
    it holds.  It also watches per-shard shed skew and flips ``size`` →
    ``hash`` placement when one shard absorbs the fabric's sheds.

:class:`HillClimbStrategy`
    Online coordinate descent, the live analogue of
    :func:`repro.autotune.search.coordinate_descent`.  It climbs the
    shared :func:`~repro.autotune.search.geometric_ladder` one rung per
    decision (the bounded step), keeps a direction while the windowed
    score improves beyond the hysteresis band, reverts and switches
    dimension otherwise, and settles once no dimension improves —
    staying settled until the score drifts out of a wider resume band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.autotune.search import geometric_ladder, ladder_index
from repro.serve.metrics import SnapshotDelta
from repro.serve.policy import (
    MAX_DELAY_BOUNDS_S,
    PLACEMENTS,
    TARGET_BATCH_BOUNDS,
    ServePolicy,
)

#: Strategy names accepted by :func:`make_strategy` (and therefore by
#: ``--controller`` / ``$REPRO_SERVE_CONTROLLER``).
STRATEGIES = ("aimd", "hill")


@dataclass(frozen=True)
class Knobs:
    """The hot knob vector a strategy reasons about.

    Delay is carried in milliseconds — the unit every latency signal in
    the windows uses — and converted at the policy boundary.
    """

    target_batch: int
    max_delay_ms: float
    placement: str | None = None

    def __post_init__(self) -> None:
        if self.target_batch <= 0:
            raise ValueError(f"target_batch must be positive, got {self.target_batch}")
        if self.max_delay_ms <= 0:
            raise ValueError(f"max_delay_ms must be positive, got {self.max_delay_ms}")
        if self.placement is not None and self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )

    @classmethod
    def from_policy(cls, policy: ServePolicy) -> "Knobs":
        return cls(
            target_batch=policy.target_batch,
            max_delay_ms=policy.max_delay_s * 1e3,
            placement=policy.placement_name(),
        )

    def to_dict(self) -> dict:
        out = {
            "target_batch": self.target_batch,
            "max_delay_ms": self.max_delay_ms,
        }
        if self.placement is not None:
            out["placement"] = self.placement
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Knobs":
        return cls(
            target_batch=int(data["target_batch"]),
            max_delay_ms=float(data["max_delay_ms"]),
            placement=data.get("placement"),
        )


@dataclass(frozen=True)
class ControlBounds:
    """The controller's clamp: absolute knob bounds plus a per-step cap.

    Narrower than the policy-level sanity bounds
    (:data:`~repro.serve.policy.TARGET_BATCH_BOUNDS`,
    :data:`~repro.serve.policy.MAX_DELAY_BOUNDS_S`) by design: the
    policy rejects the absurd, the controller stays inside the regime
    the kernels and the latency SLO were tuned for.  ``max_step_factor``
    bounds every single decision to a multiplicative band around the
    current setting, so even a misbehaving strategy moves the service
    gradually.
    """

    target_batch: tuple[int, int] = (8, 4096)
    max_delay_ms: tuple[float, float] = (0.25, 64.0)
    max_step_factor: float = 2.0

    def __post_init__(self) -> None:
        lo, hi = self.target_batch
        plo, phi = TARGET_BATCH_BOUNDS
        if not plo <= lo <= hi <= phi:
            raise ValueError(
                f"target_batch bounds must be ordered within [{plo}, {phi}], "
                f"got {self.target_batch}"
            )
        dlo, dhi = self.max_delay_ms
        pdlo, pdhi = MAX_DELAY_BOUNDS_S[0] * 1e3, MAX_DELAY_BOUNDS_S[1] * 1e3
        if not pdlo <= dlo <= dhi <= pdhi:
            raise ValueError(
                f"max_delay_ms bounds must be ordered within [{pdlo}, {pdhi}], "
                f"got {self.max_delay_ms}"
            )
        if self.max_step_factor <= 1.0:
            raise ValueError(
                f"max_step_factor must exceed 1, got {self.max_step_factor}"
            )

    def clamp(self, proposed: Knobs, current: Knobs) -> Knobs:
        """``proposed``, limited to one bounded step from ``current``.

        The step cap applies first, the absolute bounds last — a hard
        wall beats a smooth ride when the two disagree.
        """
        msf = self.max_step_factor
        tb = proposed.target_batch
        tb = min(tb, int(math.ceil(current.target_batch * msf)))
        tb = max(tb, int(math.floor(current.target_batch / msf)))
        tb = min(max(tb, self.target_batch[0]), self.target_batch[1])
        delay = proposed.max_delay_ms
        delay = min(delay, current.max_delay_ms * msf)
        delay = max(delay, current.max_delay_ms / msf)
        delay = min(max(delay, self.max_delay_ms[0]), self.max_delay_ms[1])
        return Knobs(
            target_batch=tb, max_delay_ms=delay, placement=proposed.placement
        )

    def to_dict(self) -> dict:
        return {
            "target_batch": list(self.target_batch),
            "max_delay_ms": list(self.max_delay_ms),
            "max_step_factor": self.max_step_factor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlBounds":
        return cls(
            target_batch=tuple(int(v) for v in data["target_batch"]),
            max_delay_ms=tuple(float(v) for v in data["max_delay_ms"]),
            max_step_factor=float(data["max_step_factor"]),
        )


class AIMDStrategy:
    """Backlog-reactive safety strategy (stateless, see module docstring).

    Pressure is the ratio of the window's mean coalesce wait to the
    current deadline: a healthy deadline-flushing broker sits near 1.0,
    a backlogged one far above (requests wait many deadlines for a
    flush slot).  Above ``pressure_high`` — or on any shed — both knobs
    grow by ``grow_factor``; below ``pressure_low`` with the window
    deadline-dominated, the deadline decays by ``shrink_ms``; between
    the thresholds (the hysteresis band) the strategy holds.

    When the window carries SLO burn rates
    (:attr:`~repro.serve.metrics.SnapshotDelta.slo`, stamped by a
    controller with an attached :class:`~repro.obs.slo.SloMonitor`), a
    burn above ``burn_high`` is a *latency* emergency that outranks
    throughput growth: the deadline shrinks multiplicatively so batches
    flush sooner and the tail comes back under the objective.  The burn
    rates ride inside the journaled window, so the strategy stays a pure
    function of its observations.
    """

    name = "aimd"

    def __init__(
        self,
        grow_factor: float = 1.5,
        shrink_ms: float = 0.25,
        pressure_high: float = 2.0,
        pressure_low: float = 0.75,
        skew_frac: float = 0.8,
        skew_min_sheds: int = 4,
        burn_high: float = 1.0,
    ) -> None:
        if grow_factor <= 1.0:
            raise ValueError(f"grow_factor must exceed 1, got {grow_factor}")
        if shrink_ms <= 0:
            raise ValueError(f"shrink_ms must be positive, got {shrink_ms}")
        if not 0 < pressure_low < pressure_high:
            raise ValueError(
                f"need 0 < pressure_low < pressure_high, "
                f"got {pressure_low}, {pressure_high}"
            )
        if not 0.5 < skew_frac <= 1.0:
            raise ValueError(f"skew_frac must be in (0.5, 1], got {skew_frac}")
        if burn_high <= 0:
            raise ValueError(f"burn_high must be positive, got {burn_high}")
        self.grow_factor = grow_factor
        self.shrink_ms = shrink_ms
        self.pressure_high = pressure_high
        self.pressure_low = pressure_low
        self.skew_frac = skew_frac
        self.skew_min_sheds = skew_min_sheds
        self.burn_high = burn_high

    def reset(self) -> None:
        """No internal state to reset."""

    def _skewed(self, window: SnapshotDelta) -> bool:
        total = sum(window.shed_by_shard.values())
        if total < self.skew_min_sheds or len(window.shed_by_shard) == 0:
            return False
        return max(window.shed_by_shard.values()) >= self.skew_frac * total

    def propose(self, window: SnapshotDelta, knobs: Knobs) -> tuple[Knobs, str]:
        # One shard soaking up the fabric's sheds under size placement
        # means a hot size class outgrew its shard: spread it.
        if knobs.placement == "size" and self._skewed(window):
            return (
                Knobs(knobs.target_batch, knobs.max_delay_ms, "hash"),
                "placement_skew",
            )
        # A burning latency SLO outranks throughput growth: flush sooner
        # so the tail comes back under the objective.  The bounds clamp
        # enforces the deadline floor.  Objective names carry their tier
        # (``tier_gold_coalesce_p99_ms<50``), so when *only* best-effort
        # objectives burn the response is the gentle additive trim —
        # best-effort latency is the budget the admission layer spends
        # first, not an emergency worth squeezing gold's batches for.
        burning = [
            name for name, burn in window.slo.items() if burn > self.burn_high
        ]
        if burning:
            if all(name.startswith("tier_best_effort_") for name in burning):
                softer = knobs.max_delay_ms - self.shrink_ms
                if softer <= 0:
                    return knobs, "hold"
                return (
                    Knobs(
                        target_batch=knobs.target_batch,
                        max_delay_ms=softer,
                        placement=knobs.placement,
                    ),
                    "slo_burn_best_effort",
                )
            return (
                Knobs(
                    target_batch=knobs.target_batch,
                    max_delay_ms=knobs.max_delay_ms / self.grow_factor,
                    placement=knobs.placement,
                ),
                "slo_burn",
            )
        flushes = window.counters.get("flushes", 0)
        sheds = window.counters.get("shed", 0)
        pressure = (
            window.wait_mean_ms / knobs.max_delay_ms if flushes > 0 else 0.0
        )
        deep_queue = window.queue_depth > 4 * knobs.target_batch
        if sheds > 0 or pressure > self.pressure_high or deep_queue:
            grown = Knobs(
                target_batch=max(
                    knobs.target_batch + 1,
                    int(round(knobs.target_batch * self.grow_factor)),
                ),
                max_delay_ms=knobs.max_delay_ms * self.grow_factor,
                placement=knobs.placement,
            )
            return grown, "backlog"
        if flushes == 0 and sheds == 0 and window.queue_depth == 0:
            return knobs, "idle"
        if pressure < self.pressure_low and window.deadline_frac >= 0.5:
            shrunk = Knobs(
                target_batch=knobs.target_batch,
                max_delay_ms=knobs.max_delay_ms - self.shrink_ms,
                placement=knobs.placement,
            )
            # The clamp enforces the floor; avoid proposing nonpositive.
            if shrunk.max_delay_ms <= 0:
                return knobs, "hold"
            return shrunk, "latency_headroom"
        return knobs, "hold"


class HillClimbStrategy:
    """Online coordinate descent over (max_delay_ms, target_batch).

    Stateful but deterministic in the observation sequence: the climb
    position, direction, and settle bookkeeping evolve only from the
    scores of the windows it is fed.  The score is the window's
    completion rate discounted by coalesce latency —
    ``completed_rate / (1 + wait_mean_ms / latency_ref_ms)`` — so a
    setting that gains throughput by letting requests wait ten
    reference-latencies does not look like progress.
    """

    name = "hill"

    #: The climb dimensions, in probe order.
    DIMS = ("max_delay_ms", "target_batch")

    def __init__(
        self,
        bounds: ControlBounds | None = None,
        hysteresis: float = 0.05,
        resume_factor: float = 3.0,
        latency_ref_ms: float = 10.0,
        ladder_factor: float = 2.0**0.5,
    ) -> None:
        if hysteresis <= 0:
            raise ValueError(f"hysteresis must be positive, got {hysteresis}")
        if resume_factor <= 1.0:
            raise ValueError(f"resume_factor must exceed 1, got {resume_factor}")
        if latency_ref_ms <= 0:
            raise ValueError(f"latency_ref_ms must be positive, got {latency_ref_ms}")
        bounds = bounds or ControlBounds()
        self.hysteresis = hysteresis
        self.resume_factor = resume_factor
        self.latency_ref_ms = latency_ref_ms
        self._delay_ladder = geometric_ladder(
            bounds.max_delay_ms[0], bounds.max_delay_ms[1], ladder_factor
        )
        batch_rungs = geometric_ladder(
            float(bounds.target_batch[0]),
            float(bounds.target_batch[1]),
            ladder_factor,
        )
        self._batch_ladder = tuple(
            dict.fromkeys(int(round(v)) for v in batch_rungs)
        )
        self.reset()

    def reset(self) -> None:
        self.last_score: float | None = None
        self._settled_score: float | None = None
        self._dim = 0
        self._direction = 1
        self._exhausted: set[int] = set()

    def score(self, window: SnapshotDelta) -> float:
        return window.completed_rate / (
            1.0 + window.wait_mean_ms / self.latency_ref_ms
        )

    def _rel(self, score: float, reference: float) -> float:
        return (score - reference) / max(abs(reference), 1e-9)

    def _step(self, knobs: Knobs) -> Knobs | None:
        """One rung along the current dimension; ``None`` at the ladder edge."""
        dim = self.DIMS[self._dim]
        ladder = (
            self._delay_ladder if dim == "max_delay_ms" else self._batch_ladder
        )
        value = getattr(knobs, dim)
        index = ladder_index(ladder, value) + self._direction
        if not 0 <= index < len(ladder):
            return None
        new = ladder[index]
        if dim == "max_delay_ms":
            return Knobs(knobs.target_batch, float(new), knobs.placement)
        return Knobs(int(new), knobs.max_delay_ms, knobs.placement)

    def _advance_dim(self) -> None:
        self._exhausted.add(self._dim)
        self._dim = (self._dim + 1) % len(self.DIMS)
        self._direction = 1

    def _probe(self, knobs: Knobs, reason: str) -> tuple[Knobs, str]:
        """Step along the first non-exhausted dimension, or settle."""
        while len(self._exhausted) < len(self.DIMS):
            if self._dim in self._exhausted:
                self._dim = (self._dim + 1) % len(self.DIMS)
                self._direction = 1
                continue
            stepped = self._step(knobs)
            if stepped is None:  # ladder edge: try the other direction once
                if self._direction == 1:
                    self._direction = -1
                    continue
                self._advance_dim()
                continue
            return stepped, reason
        self._settled_score = self.last_score
        return knobs, "settled"

    def propose(self, window: SnapshotDelta, knobs: Knobs) -> tuple[Knobs, str]:
        score = self.score(window)
        if self._settled_score is not None:
            band = self.hysteresis * self.resume_factor
            if abs(self._rel(score, self._settled_score)) <= band:
                self.last_score = score
                return knobs, "settled"
            # The load shifted: restart the climb from here.
            self._settled_score = None
            self._exhausted.clear()
            self._dim = 0
            self._direction = 1
            self.last_score = score
            return self._probe(knobs, "resume")
        if self.last_score is None:
            self.last_score = score
            return self._probe(knobs, "probe")
        rel = self._rel(score, self.last_score)
        self.last_score = score
        if rel > self.hysteresis:
            self._exhausted.clear()
            return self._probe(knobs, "improved")
        if rel < -self.hysteresis:
            # Worse: step back and move on to the next dimension.
            self._direction = -self._direction
            stepped = self._step(knobs)
            self._advance_dim()
            if stepped is not None:
                return stepped, "reverted"
            return self._probe(knobs, "reverted")
        self._advance_dim()
        return self._probe(knobs, "flat")


def make_strategy(name: str, bounds: ControlBounds | None = None):
    """The strategy registry behind ``--controller`` and the env knob."""
    if name == "aimd":
        return AIMDStrategy()
    if name == "hill":
        return HillClimbStrategy(bounds=bounds)
    raise ValueError(f"controller strategy must be one of {STRATEGIES}, got {name!r}")
