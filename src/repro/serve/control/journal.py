"""The decision journal: every controller adjustment, traced and replayable.

One JSONL document per controller run: a header line naming the format,
strategy, bounds, and starting knobs, then one line per decision — the
observation window the strategy saw (a full
:class:`~repro.serve.metrics.SnapshotDelta`), the knobs it chose, the
reason, and whether anything actually changed.  Because strategies are
deterministic in their observation sequence, the journal is *sufficient*
to re-derive the run: :func:`replay_journal` re-runs the recorded
strategy over the recorded windows, and :func:`verify_journal` asserts
the replay reproduces the recorded knob sequence exactly.  That check is
the subsystem's determinism gate — `replay-check` runs it on every
controlled cell.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.serve.control.strategy import ControlBounds, Knobs, make_strategy
from repro.serve.metrics import SnapshotDelta

JOURNAL_FORMAT = "repro-control-journal"
JOURNAL_VERSION = 1


def policy_roundtrip(knobs: Knobs) -> Knobs:
    """``knobs`` as they read back from an applied :class:`ServePolicy`.

    The policy stores the deadline in seconds; ms → s → ms through a
    factor of 1000 is not exact in binary floating point, and the
    journal must record what the *next* observation cycle will actually
    see.  Replay applies the same round-trip so live and replayed knob
    sequences stay bit-identical.
    """
    return Knobs(
        target_batch=knobs.target_batch,
        max_delay_ms=(knobs.max_delay_ms / 1e3) * 1e3,
        placement=knobs.placement,
    )


@dataclass(frozen=True)
class Decision:
    """One controller cycle: what was seen, what was chosen, and why."""

    seq: int
    t: float
    strategy: str
    reason: str
    knobs: Knobs
    window: SnapshotDelta
    score: float | None = None
    changed: bool = False

    def to_dict(self) -> dict:
        out = {
            "seq": self.seq,
            "t": self.t,
            "strategy": self.strategy,
            "reason": self.reason,
            "knobs": self.knobs.to_dict(),
            "window": self.window.to_dict(),
            "changed": self.changed,
        }
        if self.score is not None:
            out["score"] = self.score
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Decision":
        return cls(
            seq=int(data["seq"]),
            t=float(data["t"]),
            strategy=str(data["strategy"]),
            reason=str(data["reason"]),
            knobs=Knobs.from_dict(data["knobs"]),
            window=SnapshotDelta.from_dict(data["window"]),
            score=float(data["score"]) if "score" in data else None,
            changed=bool(data.get("changed", False)),
        )


@dataclass
class DecisionJournal:
    """An append-only record of one controller run."""

    strategy: str
    initial: Knobs
    bounds: ControlBounds = field(default_factory=ControlBounds)
    interval_s: float | None = None
    meta: dict = field(default_factory=dict)
    decisions: list[Decision] = field(default_factory=list)

    def append(self, decision: Decision) -> None:
        self.decisions.append(decision)

    def __len__(self) -> int:
        return len(self.decisions)

    @property
    def changes(self) -> int:
        """Decisions that actually adjusted a knob."""
        return sum(1 for d in self.decisions if d.changed)

    def knob_sequence(self) -> list[Knobs]:
        return [d.knobs for d in self.decisions]

    def final_knobs(self) -> Knobs:
        return self.decisions[-1].knobs if self.decisions else self.initial

    def status(self) -> dict:
        """Gauge-shaped summary of the run (final knobs, counts, score).

        The same shape :meth:`PolicyController.status` returns live, so
        :func:`repro.obs.render_controller_prometheus` accepts either —
        a saved journal can back the exposition after the run ends.
        """
        final = self.final_knobs()
        last_score = next(
            (d.score for d in reversed(self.decisions) if d.score is not None),
            None,
        )
        return {
            "strategy": self.strategy,
            "interval_s": self.interval_s,
            "decisions": len(self.decisions),
            "changes": self.changes,
            "target_batch": final.target_batch,
            "max_delay_ms": final.max_delay_ms,
            "placement": final.placement,
            "score": last_score,
        }

    def header(self) -> dict:
        out = {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_VERSION,
            "strategy": self.strategy,
            "initial": self.initial.to_dict(),
            "bounds": self.bounds.to_dict(),
        }
        if self.interval_s is not None:
            out["interval_s"] = self.interval_s
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def to_lines(self) -> list[str]:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(d.to_dict(), sort_keys=True) for d in self.decisions
        )
        return lines

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.to_lines()) + "\n")

    @classmethod
    def from_lines(cls, lines) -> "DecisionJournal":
        rows = [json.loads(line) for line in lines if line.strip()]
        if not rows:
            raise ValueError("empty decision journal")
        header = rows[0]
        if header.get("format") != JOURNAL_FORMAT:
            raise ValueError(
                f"not a decision journal (format={header.get('format')!r})"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"unsupported journal version {header.get('version')!r}"
            )
        journal = cls(
            strategy=str(header["strategy"]),
            initial=Knobs.from_dict(header["initial"]),
            bounds=ControlBounds.from_dict(header["bounds"]),
            interval_s=header.get("interval_s"),
            meta=dict(header.get("meta", {})),
        )
        for row in rows[1:]:
            journal.append(Decision.from_dict(row))
        return journal

    @classmethod
    def load(cls, path: str) -> "DecisionJournal":
        with open(path, encoding="utf-8") as fh:
            return cls.from_lines(fh)


def replay_journal(journal: DecisionJournal) -> list[Knobs]:
    """Re-run the journal's strategy over its recorded windows.

    Reconstructs the controller's decision pipeline — propose, clamp to
    bounded step, round-trip through the policy — from the journal alone
    and returns the knob sequence it produces.  Deterministic strategies
    make this byte-for-byte reproducible; :func:`verify_journal` checks.
    """
    strategy = make_strategy(journal.strategy, bounds=journal.bounds)
    strategy.reset()
    knobs = journal.initial
    replayed: list[Knobs] = []
    for decision in journal.decisions:
        proposed, _reason = strategy.propose(decision.window, knobs)
        proposed = journal.bounds.clamp(proposed, knobs)
        # Mirror the live pipeline exactly: an unchanged decision leaves
        # the policy (and therefore the observed knobs) untouched, so the
        # round-trip only applies when an update was actually pushed.
        if proposed != knobs:
            knobs = policy_roundtrip(proposed)
        replayed.append(knobs)
    return replayed


def _knobs_match(a: Knobs, b: Knobs) -> bool:
    return (
        a.target_batch == b.target_batch
        and a.placement == b.placement
        and math.isclose(a.max_delay_ms, b.max_delay_ms, rel_tol=1e-9, abs_tol=0.0)
    )


def verify_journal(journal: DecisionJournal) -> bool:
    """``True`` when replaying the journal reproduces its knob sequence.

    The determinism acceptance gate: same windows + same strategy must
    yield the same policy trajectory.  A mismatch means a strategy
    smuggled in hidden state (a clock, a random draw, module globals) —
    exactly the bug class the journal exists to catch.
    """
    replayed = replay_journal(journal)
    recorded = journal.knob_sequence()
    if len(replayed) != len(recorded):
        return False
    return all(_knobs_match(r, k) for r, k in zip(replayed, recorded))
