"""Shard placement: a stable hash ring and the two routing policies.

The paper's interleaved layout wins because every chunk is homogeneous —
all matrices in a launch share one size and one tuned configuration.  The
sharded broker fabric (:mod:`repro.serve.shard`) extends that idea one
level up: requests are partitioned across broker shards so each shard's
event loop ticks deadlines and dispatches flushes for only a slice of the
traffic.  This module decides the partition:

``size``
    The ring is keyed by matrix dimension alone, so one shard owns each
    size class outright.  Flushes stay exactly as homogeneous as the
    single-broker batcher made them (same buckets, same thresholds, same
    fill), and every size class pays its deadline ticks on one loop.
    This is the paper's chunking discipline applied to event loops.

``hash``
    The ring is keyed by (dimension, request sequence), spreading one hot
    size across every shard.  Buckets are smaller per shard but no loop
    becomes the hot size's bottleneck — the right policy when one ``n``
    dominates the offered load.

Both policies ride the same :class:`HashRing`: consistent hashing with
virtual nodes over a *stable* hash (BLAKE2b, never Python's salted
``hash()``), so placement is reproducible across processes and resizing
the fabric moves a bounded fraction of keys — adding or removing one
shard of ``N`` strands about ``1/N`` (bounded in tests by ``2/N``) of the
keyspace, instead of reshuffling everything the way ``key % N`` would.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.serve.policy import PLACEMENTS, ShardDown

#: Virtual nodes per shard.  More replicas smooth the arc distribution
#: (tighter load balance, smaller movement bound variance) at a small
#: memory/lookup cost; 64 keeps the 2/N movement bound comfortably.
RING_REPLICAS = 64


def stable_hash(key: str) -> int:
    """A 64-bit position for ``key``, identical in every process.

    Python's builtin ``hash`` is salted per interpreter (PYTHONHASHSEED),
    which would silently re-shard the fabric between runs; BLAKE2b is
    fast, unsalted, and well distributed.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over shard ids with virtual nodes.

    Each shard contributes :attr:`replicas` points on a 64-bit circle; a
    key is owned by the first point clockwise of its hash.  Adding or
    removing one shard only reassigns the arcs adjacent to that shard's
    points — the bounded-movement property the fabric's resize semantics
    (and the property tests) rely on.
    """

    def __init__(self, shard_ids=(), replicas: int = RING_REPLICAS) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._shards: set[int] = set()
        self._points: list[tuple[int, int]] = []  # (position, shard), sorted
        for shard_id in shard_ids:
            self.add(shard_id)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def _positions(self, shard_id: int):
        for replica in range(self.replicas):
            yield stable_hash(f"shard={shard_id}/vnode={replica}")

    def add(self, shard_id: int) -> None:
        """Add one shard's virtual nodes to the ring (idempotent)."""
        shard_id = int(shard_id)
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for pos in self._positions(shard_id):
            bisect.insort(self._points, (pos, shard_id))

    def remove(self, shard_id: int) -> None:
        """Remove one shard's virtual nodes from the ring (idempotent)."""
        shard_id = int(shard_id)
        if shard_id not in self._shards:
            return
        self._shards.discard(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    def lookup(self, key: str) -> int:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        if not self._points:
            raise ShardDown("hash ring is empty: no shards to place onto")
        pos = stable_hash(key)
        index = bisect.bisect_right(self._points, (pos, -1))
        if index == len(self._points):  # wrap past the top of the circle
            index = 0
        return self._points[index][1]


class ShardRouter:
    """Places requests onto alive shards under one placement policy.

    The router is the fabric's only placement authority: the
    :class:`~repro.serve.shard.ShardedBroker` asks it where each request
    goes and tells it when a shard dies (:meth:`mark_down`), after which
    the ring re-owns the dead shard's keys among the survivors and no new
    work lands there.
    """

    def __init__(
        self,
        shard_ids,
        placement: str = PLACEMENTS[0],
        replicas: int = RING_REPLICAS,
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        shard_ids = [int(s) for s in shard_ids]
        if not shard_ids:
            raise ValueError("router needs at least one shard")
        self.placement = placement
        self._ring = HashRing(shard_ids, replicas=replicas)

    @property
    def alive(self) -> tuple[int, ...]:
        """Shards the router still places work onto."""
        return self._ring.shards

    def key_for(self, n: int, seq: int) -> str:
        """The ring key of one request under the active placement."""
        if self.placement == "size":
            return f"n={int(n)}"
        return f"n={int(n)}/r={int(seq)}"

    def place(self, n: int, seq: int) -> int:
        """The shard that should serve a request of dimension ``n``.

        ``seq`` is the fabric's submission sequence number; it only
        participates under ``hash`` placement, where it spreads one size
        class across replicas.
        """
        return self._ring.lookup(self.key_for(n, seq))

    def set_placement(self, placement: str) -> None:
        """Switch the routing policy of a live fabric.

        Placement only enters :meth:`key_for`; the ring (and therefore
        which shards are alive) is untouched, so the swap is atomic per
        request — each subsequent ``place`` call uses wholly the old or
        wholly the new policy.  The online controller uses this to break
        up a hot size class (``size`` → ``hash``) when one shard absorbs
        all of the fabric's sheds.
        """
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        self.placement = placement

    def mark_down(self, shard_id: int) -> None:
        """Stop placing work on ``shard_id`` (idempotent)."""
        self._ring.remove(shard_id)
