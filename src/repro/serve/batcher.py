"""Size-bucketed adaptive batching.

The kernels factor one matrix dimension per launch, so the coalescing
layer groups pending requests into one bucket per ``n`` and flushes a
bucket when either

* it reaches its flush threshold (``ServePolicy.flush_threshold``, the
  target batch snapped to the tuned configuration's chunk size), or
* its *oldest* request has waited past the latency deadline.

The batcher itself is a plain data structure with no asyncio or clock of
its own — the broker drives it with explicit timestamps, which keeps the
flush policy unit-testable without an event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

#: The two request kinds the service accepts.
KINDS = ("factor", "solve")


@dataclass(eq=False)
class PendingRequest:
    """One queued request: a matrix, an optional right-hand side, a future.

    Identity semantics (``eq=False``): every request is its own object —
    value equality would compare the payload arrays, and the broker's
    bookkeeping (bucket removal on timeout, the in-flight set it must
    fail on abandon) wants *this request*, not a lookalike.  Identity
    hashing also keeps the object usable in sets.
    """

    seq: int
    kind: str
    a: np.ndarray  # (n, n)
    b: np.ndarray | None
    future: Any  # asyncio.Future; Any keeps the batcher loop-agnostic
    enqueued_at: float
    attempts: int = 0
    #: When the broker first saw the request (same monotonic clock as
    #: ``enqueued_at``); anchors the tracing layer's per-request span.
    submitted_at: float = 0.0

    @property
    def n(self) -> int:
        return self.a.shape[0]


@dataclass
class SizeBucket:
    """Pending requests for one matrix dimension."""

    n: int
    threshold: int
    requests: list[PendingRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def full(self) -> bool:
        return len(self.requests) >= self.threshold

    def oldest_enqueued_at(self) -> float | None:
        return self.requests[0].enqueued_at if self.requests else None

    def deadline_due(self, now: float, max_delay_s: float) -> bool:
        oldest = self.oldest_enqueued_at()
        return oldest is not None and (now - oldest) >= max_delay_s


class AdaptiveBatcher:
    """Coalesces individual requests into per-``n`` buckets.

    ``threshold_for(n)`` supplies each bucket's flush threshold; it is
    called once per distinct size and cached, because resolving it walks
    the tuned dispatch table.
    """

    def __init__(self, threshold_for: Callable[[int], int]) -> None:
        self._threshold_for = threshold_for
        self._thresholds: dict[int, int] = {}
        self._buckets: dict[int, SizeBucket] = {}
        self.pending = 0

    def threshold(self, n: int) -> int:
        if n not in self._thresholds:
            threshold = int(self._threshold_for(n))
            if threshold <= 0:
                raise ValueError(f"flush threshold for n={n} must be positive")
            self._thresholds[n] = threshold
        return self._thresholds[n]

    def add(self, request: PendingRequest) -> SizeBucket:
        """Queue a request; returns its bucket so the caller can test fullness."""
        n = request.n
        bucket = self._buckets.get(n)
        if bucket is None:
            bucket = self._buckets[n] = SizeBucket(n=n, threshold=self.threshold(n))
        bucket.requests.append(request)
        self.pending += 1
        return bucket

    def pop(self, n: int) -> list[PendingRequest]:
        """Remove and return every pending request for dimension ``n``."""
        bucket = self._buckets.pop(n, None)
        if bucket is None:
            return []
        self.pending -= len(bucket.requests)
        return bucket.requests

    def pop_due(self, now: float, max_delay_s: float) -> list[SizeBucket]:
        """Remove and return the buckets whose deadline has expired."""
        due = [
            b for b in self._buckets.values() if b.deadline_due(now, max_delay_s)
        ]
        for bucket in due:
            del self._buckets[bucket.n]
            self.pending -= len(bucket.requests)
        return due

    def pop_all(self) -> list[SizeBucket]:
        """Remove and return every non-empty bucket (used when draining)."""
        buckets = list(self._buckets.values())
        self._buckets.clear()
        self.pending = 0
        return buckets

    def discard(self, request: PendingRequest) -> bool:
        """Remove one request (timeout expiry) if it is still queued.

        Returns ``False`` when the request already left with a flush —
        the caller must then wait for its future instead.
        """
        bucket = self._buckets.get(request.n)
        if bucket is None:
            return False
        try:
            bucket.requests.remove(request)
        except ValueError:
            return False
        self.pending -= 1
        if not bucket.requests:
            del self._buckets[bucket.n]
        return True

    def rethreshold(self) -> list[SizeBucket]:
        """Recompute every flush threshold after a live policy update.

        Clears the per-``n`` threshold cache (the ``threshold_for``
        callable reads the broker's *current* policy, so fresh lookups
        pick up the new knobs), rewrites the threshold captured in each
        live bucket, and returns the buckets the new, lower threshold
        made full — the broker flushes those immediately, which is what
        "takes effect at the next coalesce boundary" means.  Requests
        already popped for an in-flight flush are untouched.
        """
        self._thresholds.clear()
        full: list[SizeBucket] = []
        for bucket in self._buckets.values():
            bucket.threshold = self.threshold(bucket.n)
            if bucket.full:
                full.append(bucket)
        return full

    def sizes(self) -> Iterable[int]:
        """The matrix dimensions currently holding pending requests."""
        return tuple(self._buckets)

    def fill_levels(self) -> dict[int, tuple[int, int]]:
        """``{n: (pending, threshold)}`` for every non-empty bucket.

        The telemetry snapshot reads this to turn bucket fill into a time
        series without reaching into the bucket map.
        """
        return {
            n: (len(bucket.requests), bucket.threshold)
            for n, bucket in self._buckets.items()
        }
