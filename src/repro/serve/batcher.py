"""Size-bucketed adaptive batching.

The kernels factor one matrix dimension per launch, so the coalescing
layer groups pending requests into one bucket per ``n`` and flushes a
bucket when either

* it reaches its flush threshold (``ServePolicy.flush_threshold``, the
  target batch snapped to the tuned configuration's chunk size), or
* its *oldest* request has waited past the latency deadline.

The batcher itself is a plain data structure with no asyncio or clock of
its own — the broker drives it with explicit timestamps, which keeps the
flush policy unit-testable without an event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

#: The two request kinds the service accepts.
KINDS = ("factor", "solve")


@dataclass(eq=False)
class PendingRequest:
    """One queued request: a matrix, an optional right-hand side, a future.

    Identity semantics (``eq=False``): every request is its own object —
    value equality would compare the payload arrays, and the broker's
    bookkeeping (bucket removal on timeout, the in-flight set it must
    fail on abandon) wants *this request*, not a lookalike.  Identity
    hashing also keeps the object usable in sets.
    """

    seq: int
    kind: str
    a: np.ndarray  # (n, n)
    b: np.ndarray | None
    future: Any  # asyncio.Future; Any keeps the batcher loop-agnostic
    enqueued_at: float
    attempts: int = 0
    #: When the broker first saw the request (same monotonic clock as
    #: ``enqueued_at``); anchors the tracing layer's per-request span.
    submitted_at: float = 0.0
    #: SLA tier and tenant of the request (``repro.serve.admission``).
    #: Plain brokers leave the defaults; the admission layer stamps them.
    tier: str = "silver"
    tenant: str = "default"
    #: Per-request coalesce deadline override in seconds (``None`` means
    #: the policy-wide ``max_delay_s`` applies) — how per-tier deadlines
    #: reach the batcher without the batcher knowing about tiers.
    delay_s: float | None = None
    #: Weighted-fair-queue virtual finish time, stamped at admission;
    #: flush selection drains requests in this order.
    vft: float = 0.0
    #: Arena slot lease when the request was staged into the zero-copy
    #: data plane at enqueue time (:mod:`repro.serve.arena`); ``None``
    #: means the pickle/copy fallback carries this request's payload.
    lease: Any = None

    @property
    def n(self) -> int:
        return self.a.shape[0]


@dataclass
class SizeBucket:
    """Pending requests for one matrix dimension."""

    n: int
    threshold: int
    requests: list[PendingRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def full(self) -> bool:
        return len(self.requests) >= self.threshold

    def oldest_enqueued_at(self) -> float | None:
        return self.requests[0].enqueued_at if self.requests else None

    def deadline_due(self, now: float, max_delay_s: float) -> bool:
        """Whether any queued request has outlived its coalesce deadline.

        A request with a per-tier ``delay_s`` override is judged against
        it; the rest use the policy-wide ``max_delay_s``.  Checking every
        request (not just the oldest) lets a tight-deadline tier flush a
        bucket that older, laxer requests would have kept waiting.
        """
        return any(
            (now - r.enqueued_at)
            >= (r.delay_s if r.delay_s is not None else max_delay_s)
            for r in self.requests
        )


class AdaptiveBatcher:
    """Coalesces individual requests into per-``n`` buckets.

    ``threshold_for(n)`` supplies each bucket's flush threshold; it is
    called once per distinct size and cached, because resolving it walks
    the tuned dispatch table.

    ``stager`` (optional) is an :class:`~repro.serve.arena.ArenaPool`:
    when present, :meth:`add` stages each request's matrix into a
    shared-memory slot *at enqueue time* — the coalescing write — and
    stamps the lease on the request.  A ``None`` lease (arena disabled
    or unavailable) simply means that request rides the copy fallback;
    the batcher never fails an add over staging.  Releasing leases is
    the broker's job (scatter, shed and failure paths), so the
    conservation ledger lives in one place.
    """

    def __init__(
        self, threshold_for: Callable[[int], int], stager=None
    ) -> None:
        self._threshold_for = threshold_for
        self._thresholds: dict[int, int] = {}
        self._buckets: dict[int, SizeBucket] = {}
        self.stager = stager
        self.pending = 0

    def threshold(self, n: int) -> int:
        if n not in self._thresholds:
            threshold = int(self._threshold_for(n))
            if threshold <= 0:
                raise ValueError(f"flush threshold for n={n} must be positive")
            self._thresholds[n] = threshold
        return self._thresholds[n]

    def add(self, request: PendingRequest) -> SizeBucket:
        """Queue a request; returns its bucket so the caller can test fullness."""
        n = request.n
        bucket = self._buckets.get(n)
        if bucket is None:
            bucket = self._buckets[n] = SizeBucket(n=n, threshold=self.threshold(n))
        if self.stager is not None and request.lease is None:
            request.lease = self.stager.stage(request.a)
        bucket.requests.append(request)
        self.pending += 1
        return bucket

    def pop(
        self, n: int, limit: int | None = None
    ) -> list[PendingRequest]:
        """Remove and return pending requests for dimension ``n``.

        Without ``limit`` the whole bucket drains (the classic FIFO
        flush).  With ``limit`` at most that many requests leave, chosen
        in weighted-fair order (ascending virtual finish time, sequence
        number as the deterministic tie-break) — the admission layer's
        guarantee that one hot tenant cannot occupy every flush slot.
        The rest stay queued with their bucket.
        """
        bucket = self._buckets.get(n)
        if bucket is None:
            return []
        if limit is None or len(bucket.requests) <= limit:
            del self._buckets[n]
            self.pending -= len(bucket.requests)
            return bucket.requests
        ordered = sorted(bucket.requests, key=lambda r: (r.vft, r.seq))
        taken = ordered[:limit]
        taken_set = set(map(id, taken))
        bucket.requests = [
            r for r in bucket.requests if id(r) not in taken_set
        ]
        self.pending -= len(taken)
        return taken

    def pop_due(self, now: float, max_delay_s: float) -> list[SizeBucket]:
        """Remove and return the buckets whose deadline has expired."""
        due = [
            b for b in self._buckets.values() if b.deadline_due(now, max_delay_s)
        ]
        for bucket in due:
            del self._buckets[bucket.n]
            self.pending -= len(bucket.requests)
        return due

    def pop_all(self) -> list[SizeBucket]:
        """Remove and return every non-empty bucket (used when draining)."""
        buckets = list(self._buckets.values())
        self._buckets.clear()
        self.pending = 0
        return buckets

    def discard(self, request: PendingRequest) -> bool:
        """Remove one request (timeout expiry) if it is still queued.

        Returns ``False`` when the request already left with a flush —
        the caller must then wait for its future instead.
        """
        bucket = self._buckets.get(request.n)
        if bucket is None:
            return False
        try:
            bucket.requests.remove(request)
        except ValueError:
            return False
        self.pending -= 1
        if not bucket.requests:
            del self._buckets[bucket.n]
        return True

    def rethreshold(self) -> list[SizeBucket]:
        """Recompute every flush threshold after a live policy update.

        Clears the per-``n`` threshold cache (the ``threshold_for``
        callable reads the broker's *current* policy, so fresh lookups
        pick up the new knobs), rewrites the threshold captured in each
        live bucket, and returns the buckets the new, lower threshold
        made full — the broker flushes those immediately, which is what
        "takes effect at the next coalesce boundary" means.  Requests
        already popped for an in-flight flush are untouched.
        """
        self._thresholds.clear()
        full: list[SizeBucket] = []
        for bucket in self._buckets.values():
            bucket.threshold = self.threshold(bucket.n)
            if bucket.full:
                full.append(bucket)
        return full

    def sizes(self) -> Iterable[int]:
        """The matrix dimensions currently holding pending requests."""
        return tuple(self._buckets)

    def queued(self) -> Iterable[PendingRequest]:
        """Every queued request, bucket by bucket (shed-victim scans)."""
        for bucket in self._buckets.values():
            yield from bucket.requests

    def fill_levels(self) -> dict[int, tuple[int, int]]:
        """``{n: (pending, threshold)}`` for every non-empty bucket.

        The telemetry snapshot reads this to turn bucket fill into a time
        series without reaching into the bucket map.
        """
        return {
            n: (len(bucket.requests), bucket.threshold)
            for n, bucket in self._buckets.items()
        }
