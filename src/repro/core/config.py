"""Kernel configuration: the tunable parameters of Section II.D.

One :class:`KernelConfig` describes one point of the autotuning space:

1. **Tile size** ``nb`` — the register-tile blocking factor (Figure 9/10
   code is generated for this size).
2. **Looking** — right (aggressive), left (lazy), or top (laziest) order of
   evaluation of the tile operations.
3. **Chunking** — whether the batch uses the simple interleaved layout
   (Figure 7) or the chunked interleaved layout (Figure 8).
4. **Chunk size** — matrices per chunk; also the thread-block size of the
   launched kernel.  Only meaningful when ``chunked`` is true.
5. **Unrolling** — whether the outer tile loops are also fully unrolled
   (Figure 12) in addition to the always-unrolled tile micro-ops
   (Figure 11).

Two further knobs appear in the paper's analysis (Table I):

* ``fast_math`` — the ``--use_fast_math`` compiler option (relaxed IEEE
  square root and division, flush-to-zero).  The kernel *source* is
  identical; only the cost of the emitted divide/sqrt sequences changes,
  which is how the performance model treats it.
* ``cache_pref`` — the CUDA ``cudaFuncCachePrefer{L1,Shared}`` carve-out
  choice.  The kernels use no shared memory, so the paper finds this knob
  has essentially no predictive power — reproducing that non-effect is part
  of reproducing Table I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.layouts.base import WARP_SIZE, Layout
from repro.layouts.chunked import SUPPORTED_CHUNK_SIZES, ChunkedInterleavedLayout
from repro.layouts.interleaved import InterleavedLayout


class Looking(str, enum.Enum):
    """Order of evaluation of the tile operations (Figures 3-5)."""

    RIGHT = "right"
    LEFT = "left"
    TOP = "top"


class Unrolling(str, enum.Enum):
    """Outer-loop unrolling mode (Figures 11 vs 12)."""

    PARTIAL = "partial"  # tile micro-ops unrolled, outer loops remain
    FULL = "full"  # the whole factorization is straight-line code


class Precision(str, enum.Enum):
    """Arithmetic precision.

    The paper works in single precision throughout; double precision is
    the natural extension and changes three real things: element size
    (8 bytes — interleaved warp reads still coalesce perfectly, as two
    full 128-byte transactions), register cost (a double occupies two
    32-bit registers, halving the residency window), and FP64 throughput
    (1:2 on the P100).
    """

    SINGLE = "single"
    DOUBLE = "double"


class Uplo(str, enum.Enum):
    """Which triangle the factorization reads and writes.

    The paper implements the lower-triangular case ("Here, we only
    support lower triangular matrices.  Upper triangular matrices can be
    supported in the same manner"); this reproduction supports both —
    upper mode generates the same schedules with transposed element
    addressing, producing ``U`` with ``A = U^T U``.
    """

    LOWER = "lower"
    UPPER = "upper"


class CachePreference(str, enum.Enum):
    """L1-versus-shared-memory carve-out (the Table I `cache` binary)."""

    L1 = "l1"
    SHARED = "shared"


#: Default thread-block size used for the non-chunked (simple interleaved)
#: kernels, where the block size is a free launch parameter rather than the
#: chunk size.
DEFAULT_BLOCK_THREADS = 128


@dataclass(frozen=True)
class KernelConfig:
    """One point of the autotuning space."""

    n: int
    nb: int = 4
    looking: Looking = Looking.TOP
    chunked: bool = True
    chunk_size: int = WARP_SIZE
    unroll: Unrolling = Unrolling.PARTIAL
    fast_math: bool = False
    cache_pref: CachePreference = CachePreference.L1
    uplo: Uplo = Uplo.LOWER
    precision: Precision = Precision.SINGLE

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.nb <= 0:
            raise ValueError(f"nb must be positive, got {self.nb}")
        object.__setattr__(self, "looking", Looking(self.looking))
        object.__setattr__(self, "unroll", Unrolling(self.unroll))
        object.__setattr__(self, "cache_pref", CachePreference(self.cache_pref))
        object.__setattr__(self, "uplo", Uplo(self.uplo))
        object.__setattr__(self, "precision", Precision(self.precision))
        if self.chunked and self.chunk_size not in SUPPORTED_CHUNK_SIZES:
            raise ValueError(
                f"chunk_size must be one of {SUPPORTED_CHUNK_SIZES}, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def effective_nb(self) -> int:
        """Tile size clipped to the matrix dimension."""
        return min(self.nb, self.n)

    @property
    def num_tiles(self) -> int:
        """Total tile rows/columns, counting a partial corner tile."""
        return -(-self.n // self.effective_nb)

    @property
    def full_tiles(self) -> int:
        """Number of full ``nb``-sized tile rows/columns."""
        return self.n // self.effective_nb

    @property
    def corner(self) -> int:
        """Dimension of the corner tile (0 when ``nb`` divides ``n``)."""
        return self.n % self.effective_nb

    @property
    def block_threads(self) -> int:
        """Threads per thread block (= chunk size for chunked kernels)."""
        return self.chunk_size if self.chunked else DEFAULT_BLOCK_THREADS

    @property
    def itemsize(self) -> int:
        """Bytes per matrix element."""
        return 4 if self.precision is Precision.SINGLE else 8

    @property
    def regs_per_element(self) -> int:
        """32-bit registers one matrix element occupies in a thread."""
        return 1 if self.precision is Precision.SINGLE else 2

    def np_dtype(self):
        """The NumPy dtype the executors compute in."""
        import numpy as np

        return np.float32 if self.precision is Precision.SINGLE else np.float64

    def layout(self) -> Layout:
        """The data layout this configuration operates on."""
        if self.chunked:
            return ChunkedInterleavedLayout(self.chunk_size)
        return InterleavedLayout()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_(self, **changes) -> "KernelConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def cache_key(self) -> tuple:
        """Key identifying the *generated source* (not the launch shape).

        ``chunk_size``, ``fast_math`` and ``cache_pref`` do not change the
        generated statements — chunk size is a run-time parameter in the
        paper too ("They are all compile time parameters except chunk
        size").  Chunking itself does not alter the statement stream either
        (the layout is handled by how the driver slices the buffer), so
        compiled kernels are shared across all of those knobs.  ``uplo``
        *does* change the generated element addressing and is part of the
        key — but traces are uplo-invariant, so trace caching keys on
        :meth:`trace_key`.
        """
        return (
            self.n,
            self.effective_nb,
            self.looking.value,
            self.unroll.value,
            self.uplo.value,
            self.precision.value,
        )

    def trace_key(self) -> tuple:
        """Key identifying the dynamic tile-op schedule (uplo-invariant)."""
        return (self.n, self.effective_nb, self.looking.value, self.unroll.value)

    def describe(self) -> str:
        """Human-readable one-liner used by sweep logs."""
        chunk = f"chunked({self.chunk_size})" if self.chunked else "non-chunked"
        math = "fast" if self.fast_math else "ieee"
        uplo = "" if self.uplo is Uplo.LOWER else " upper"
        return (
            f"n={self.n} nb={self.effective_nb} {self.looking.value}-looking "
            f"{chunk} {self.unroll.value}-unroll {math} {self.cache_pref.value}{uplo}"
        )
