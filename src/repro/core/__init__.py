"""The paper's primary contribution: interleaved batch Cholesky factorization.

Public surface:

* :class:`~repro.core.config.KernelConfig` — the five tunable parameters of
  Section II.D (tile size, looking, chunking, chunk size, unrolling) plus
  the arithmetic mode (IEEE vs ``--use_fast_math``) and the L1/shared cache
  preference studied in Table I.
* :func:`~repro.core.factorize.batch_cholesky` — factorize a batch of SPD
  matrices in any supported layout with a generated kernel.
* :func:`~repro.core.solve.batch_solve` — forward/backward substitution
  against the computed factors (the paper's motivating ALS use case needs
  full solves).
* :func:`~repro.core.schedule.build_schedule` — the flat tile-operation
  schedule for a configuration (shared by the reference executor and the
  GPU performance model).
"""

from repro.core.config import KernelConfig, Looking, Precision, Unrolling, Uplo
from repro.core.schedule import TileOp, build_schedule, schedule_counts
from repro.core.reference import (
    cholesky_unblocked,
    cholesky_blocked,
    batch_cholesky_reference,
)
from repro.core.factorize import batch_cholesky, factorize_buffer
from repro.core.solve import batch_solve, batch_trsv_lower, batch_trsv_lower_t
from repro.core.solve_kernels import batch_solve_kernel, compiled_solve_kernel
from repro.core.trace import KernelTrace, build_trace
from repro.core.validate import assert_factorization_ok, factorization_info

__all__ = [
    "KernelConfig",
    "Looking",
    "Unrolling",
    "Uplo",
    "Precision",
    "TileOp",
    "build_schedule",
    "schedule_counts",
    "cholesky_unblocked",
    "cholesky_blocked",
    "batch_cholesky_reference",
    "batch_cholesky",
    "factorize_buffer",
    "batch_solve",
    "batch_trsv_lower",
    "batch_trsv_lower_t",
    "KernelTrace",
    "build_trace",
    "batch_solve_kernel",
    "compiled_solve_kernel",
    "assert_factorization_ok",
    "factorization_info",
]
