"""Batch Cholesky factorization driver — the library's main entry point.

The driver owns everything outside the kernel: packing the dense batch into
the configured interleaved layout, slicing the buffer into the lane view
the generated kernel expects, invoking the kernel, and unpacking.

The kernel itself sees ``dA`` indexable by the element id ``e = j*n + i``,
with ``dA[e]`` yielding all lane values for that element:

* simple interleaved layout — ``dA`` is the ``(n*n, padded_batch)`` view of
  the buffer, one kernel invocation covers the whole batch;
* chunked layout — ``dA`` is the ``(n*n, num_chunks, chunk_size)`` view, so
  a single invocation advances *all* chunks in lockstep.  On the GPU each
  chunk is one thread block; because every block executes the identical
  straight-line program, executing them together is numerically identical
  and keeps the NumPy work vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import KernelConfig
from repro.layouts.base import BatchSpec
from repro.layouts.chunked import ChunkedInterleavedLayout


def _lane_view(buf: np.ndarray, spec: BatchSpec, config: KernelConfig) -> np.ndarray:
    """Element-indexable view of the layout buffer (writes go through)."""
    n = spec.n
    if config.chunked:
        layout = ChunkedInterleavedLayout(config.chunk_size)
        nchunks = layout.num_chunks(spec)
        view = buf.reshape(nchunks, n * n, layout.chunk_size)
        return np.moveaxis(view, 1, 0)  # (n*n, nchunks, chunk_size)
    return buf.reshape(n * n, spec.padded_batch)


def factorize_buffer(buf: np.ndarray, spec: BatchSpec, config: KernelConfig) -> None:
    """Factorize a packed layout buffer in place with the configured kernel.

    ``buf`` must have been produced by ``config.layout().pack(...)`` for a
    batch matching ``spec``.  On return the lower triangles hold ``L``; the
    strictly upper parts are untouched (the paper's convention).
    """
    if spec.n != config.n:
        raise ValueError(f"spec.n={spec.n} does not match config.n={config.n}")
    expected = config.layout().buffer_len(spec)
    if buf.shape != (expected,):
        raise ValueError(
            f"buffer has shape {buf.shape}, expected ({expected},) for "
            f"layout {config.layout().name!r}"
        )
    # Deferred import: repro.codegen imports repro.core eagerly, so the
    # reverse edge must resolve at call time.
    from repro.codegen.compile import compiled_kernel

    kernel = compiled_kernel(config)
    kernel(_lane_view(buf, spec, config))


def batch_cholesky(
    a: np.ndarray,
    config: KernelConfig | None = None,
    **config_kwargs,
) -> np.ndarray:
    """Factorize a batch of SPD matrices with a generated interleaved kernel.

    Parameters
    ----------
    a:
        Dense batch of shape ``(batch, n, n)``, any float dtype (converted
        to the configuration's precision — ``float32`` by default, the
        paper's single-precision setting; ``precision="double"`` computes
        in ``float64``).
    config:
        Kernel configuration; when omitted, one is built from
        ``config_kwargs`` (with ``n`` taken from the input) using the
        defaults of :class:`~repro.core.config.KernelConfig`.

    Returns
    -------
    Dense batch ``(batch, n, n)`` whose lower triangles contain the
    Cholesky factors; strictly upper parts carry the original values.

    Examples
    --------
    >>> from repro.utils import random_spd_batch
    >>> a = random_spd_batch(64, 8)
    >>> l = batch_cholesky(a, nb=4, looking="top")
    >>> import numpy as np
    >>> lt = np.tril(l[0])
    >>> bool(np.allclose(lt @ lt.T, a[0], atol=1e-3))
    True
    """
    a = np.asarray(a)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (batch, n, n) array, got shape {a.shape}")
    batch, n, _ = a.shape
    if config is None:
        config = KernelConfig(n=n, **config_kwargs)
    elif config_kwargs:
        raise TypeError("pass either a config object or keyword fields, not both")
    if config.n != n:
        raise ValueError(f"config.n={config.n} does not match matrix dimension {n}")

    a_typed = np.ascontiguousarray(a, dtype=config.np_dtype())
    layout = config.layout()
    buf = layout.pack(a_typed)
    spec = BatchSpec(batch=batch, n=n, itemsize=config.itemsize)
    factorize_buffer(buf, spec, config)
    return layout.unpack(buf, spec)
