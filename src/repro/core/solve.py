"""Batch triangular solves and SPD solves.

The paper factors only (`"In this article we focus solely on the
factorization step"`), but its motivating application — Alternating Least
Squares — needs the full solve ``A x = b``.  These routines apply forward
and backward substitution against the factors produced by
:func:`repro.core.factorize.batch_cholesky`, vectorised over the batch in
the same SIMT style as the kernels (a loop over rows, NumPy over the
batch).
"""

from __future__ import annotations

import numpy as np


def _check_factor_rhs(l: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    l = np.asarray(l)
    b = np.asarray(b)
    if l.ndim != 3 or l.shape[1] != l.shape[2]:
        raise ValueError(f"expected factors of shape (batch, n, n), got {l.shape}")
    if b.ndim == 2:
        b = b[:, :, None]
    if b.ndim != 3 or b.shape[0] != l.shape[0] or b.shape[1] != l.shape[1]:
        raise ValueError(
            f"rhs shape {b.shape} incompatible with factors {l.shape}; "
            "expected (batch, n) or (batch, n, nrhs)"
        )
    return l, b


def batch_trsv_lower(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` for each matrix in the batch (forward substitution).

    Only the lower triangle of ``l`` is referenced, so factors with the
    original matrix still in the upper part are fine.
    """
    l, b = _check_factor_rhs(l, b)
    n = l.shape[1]
    y = np.array(b, dtype=np.result_type(l.dtype, b.dtype), copy=True)
    for i in range(n):
        if i:
            y[:, i, :] -= np.einsum("bj,bjr->br", l[:, i, :i], y[:, :i, :])
        y[:, i, :] /= l[:, i, i, None]
    return y


def batch_trsv_lower_t(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` for each matrix in the batch (back substitution)."""
    l, b = _check_factor_rhs(l, b)
    n = l.shape[1]
    x = np.array(b, dtype=np.result_type(l.dtype, b.dtype), copy=True)
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            # Row i of L^T is column i of L below the diagonal.
            x[:, i, :] -= np.einsum("bj,bjr->br", l[:, i + 1 :, i], x[:, i + 1 :, :])
        x[:, i, :] /= l[:, i, i, None]
    return x


def batch_solve(l: np.ndarray, b: np.ndarray, uplo: str = "lower") -> np.ndarray:
    """Solve ``A x = b`` given the Cholesky factors of each ``A``.

    Equivalent to LAPACK's ``potrs``: forward substitution with ``L``
    followed by back substitution with ``L^T``.  With ``uplo="upper"``
    the factors hold ``U`` (``A = U^T U``, as produced by the upper-mode
    kernels) and the same two sweeps run against ``U^T``.  Returns ``x``
    with the same (2-D or 3-D) rank as ``b``.
    """
    if uplo not in ("lower", "upper"):
        raise ValueError(f"uplo must be 'lower' or 'upper', got {uplo!r}")
    if uplo == "upper":
        l = np.asarray(l).transpose(0, 2, 1)
    squeeze = np.asarray(b).ndim == 2
    y = batch_trsv_lower(l, b)
    x = batch_trsv_lower_t(l, y)
    return x[:, :, 0] if squeeze else x


def batch_spd_solve(a: np.ndarray, b: np.ndarray, **cholesky_kwargs) -> np.ndarray:
    """Factor-and-solve convenience: ``x = A^{-1} b`` per batch entry."""
    from repro.core.factorize import batch_cholesky  # deferred: avoids cycle

    l = batch_cholesky(a, **cholesky_kwargs)
    return batch_solve(l, b)
