"""Batch solves through generated interleaved kernels.

While :mod:`repro.core.solve` applies substitution with dense NumPy (the
host-side reference), this module runs the *generated* solve kernels of
:mod:`repro.codegen.solvekernel` on interleaved buffers — the GPU path
the paper's prior work [9] ships for the factor-then-solve workload, and
what the ALS application would launch in production.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.codegen.solvekernel import GeneratedSolveKernel, generate_solve_source
from repro.core.config import KernelConfig
from repro.layouts.base import BatchSpec
from repro.layouts.vectors import pack_vectors, unpack_vectors, vector_lane_view

#: (n, nrhs) -> (generated kernel, compiled callable)
_SOLVE_CACHE: dict[tuple[int, int], tuple[GeneratedSolveKernel, Callable]] = {}


def compiled_solve_kernel(n: int, nrhs: int = 1) -> Callable:
    """Generate (or fetch from cache) the solve kernel for a shape."""
    key = (n, nrhs)
    hit = _SOLVE_CACHE.get(key)
    if hit is None:
        kernel = generate_solve_source(n, nrhs)
        namespace: dict = {}
        code = compile(kernel.source, f"<solve kernel n={n} nrhs={nrhs}>", "exec")
        exec(code, namespace)  # noqa: S102 - our own generated source
        raw = namespace["_solve_kernel"]

        def run(dA, dB):
            return raw(dA, dB, np)

        run.generated = kernel  # type: ignore[attr-defined]
        _SOLVE_CACHE[key] = (kernel, run)
        hit = _SOLVE_CACHE[key]
    return hit[1]


def clear_solve_kernel_cache() -> None:
    _SOLVE_CACHE.clear()


def batch_solve_kernel(
    l: np.ndarray,
    b: np.ndarray,
    config: KernelConfig | None = None,
) -> np.ndarray:
    """Solve ``A x = b`` with generated kernels, given dense factors ``L``.

    ``l`` is a dense ``(batch, n, n)`` batch whose lower triangles hold the
    Cholesky factors (strictly upper parts are ignored); ``b`` is
    ``(batch, n)`` or ``(batch, n, nrhs)``.  The data is packed into the
    interleaved layout selected by ``config`` (chunked at ``chunk_size``
    by default), solved in place, and unpacked.
    """
    l = np.asarray(l)
    b = np.asarray(b)
    if l.ndim != 3 or l.shape[1] != l.shape[2]:
        raise ValueError(f"expected factors of shape (batch, n, n), got {l.shape}")
    squeeze = b.ndim == 2
    if squeeze:
        b = b[:, :, None]
    if b.ndim != 3 or b.shape[:2] != l.shape[:2]:
        raise ValueError(f"rhs shape {b.shape} incompatible with factors {l.shape}")
    batch, n, _ = l.shape
    nrhs = b.shape[2]
    if config is None:
        config = KernelConfig(n=n)
    if config.n != n:
        raise ValueError(f"config.n={config.n} does not match factors' n={n}")

    chunk = config.chunk_size if config.chunked else None

    l32 = np.ascontiguousarray(l, dtype=np.float32)
    b32 = np.ascontiguousarray(b, dtype=np.float32)

    layout = config.layout()
    # The matrix layout pads to its own group; vectors must pad identically.
    spec = BatchSpec(batch=batch, n=n)
    buf_a = layout.pack(l32)
    buf_b = pack_vectors(b32, chunk)

    n_elems = n * n
    if config.chunked:
        from repro.layouts.chunked import ChunkedInterleavedLayout

        chunked_layout = ChunkedInterleavedLayout(config.chunk_size)
        nchunks = chunked_layout.num_chunks(spec)
        dA = np.moveaxis(buf_a.reshape(nchunks, n_elems, config.chunk_size), 1, 0)
    else:
        dA = buf_a.reshape(n_elems, spec.padded_batch)
    dB = vector_lane_view(buf_b, batch, n, nrhs, chunk)
    if dA.shape[1:] != dB.shape[1:]:
        raise AssertionError(
            f"matrix/vector lane shapes diverged: {dA.shape} vs {dB.shape}"
        )

    kernel = compiled_solve_kernel(n, nrhs)
    kernel(dA, dB)

    x = unpack_vectors(buf_b, batch, n, nrhs, chunk)
    return x[:, :, 0] if squeeze else x
