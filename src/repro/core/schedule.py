"""Flat tile-operation schedules.

A *schedule* is the dynamic sequence of tile operations one thread performs
to factorize its matrix: loads and stores of tiles (Figure 10) interleaved
with the four compute micro-ops (Figure 9), ordered according to the
looking variant (Figures 3-5).

The schedule is produced by replaying the exact same emission logic that
generates the kernel source (:mod:`repro.codegen.kernel`), so the trace fed
to the GPU performance model and the statements executed numerically can
never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.opmix import OpMixCounter

#: Memory-op kinds (tile loads/stores).
MEM_KINDS = frozenset({"load_full", "load_lower", "store_full", "store_lower"})
#: Compute-op kinds.
COMPUTE_KINDS = frozenset({"potrf", "trsm", "syrk", "gemm"})


@dataclass(frozen=True)
class TileOp:
    """One tile-granularity operation in a kernel's dynamic schedule.

    Attributes
    ----------
    kind:
        One of ``load_full``, ``load_lower``, ``store_full``,
        ``store_lower``, ``potrf``, ``trsm``, ``syrk``, ``gemm``.
    target:
        Tile coordinates ``(mt, nt)`` of the tile being moved (memory ops)
        or updated in registers (compute ops).
    operands:
        Tile coordinates of operand tiles for compute ops (empty for
        memory ops and ``potrf``).
    shape:
        Tile shape: ``(mb, nbc)`` for full moves and trsm, ``(kb,)`` for
        lower moves and potrf, ``(mb, kb)`` for syrk, ``(mb, nb2, kb)``
        for gemm.
    elems:
        Elements moved (memory ops only; 0 for compute ops).
    ops:
        Scalar operation mix (compute ops only; ``None`` for memory ops).
    """

    kind: str
    target: tuple[int, int]
    operands: tuple = ()
    shape: tuple = ()
    elems: int = 0
    ops: OpMixCounter | None = None

    def __post_init__(self) -> None:
        if self.kind not in MEM_KINDS and self.kind not in COMPUTE_KINDS:
            raise ValueError(f"unknown tile-op kind {self.kind!r}")

    @property
    def is_memory(self) -> bool:
        return self.kind in MEM_KINDS

    @property
    def is_load(self) -> bool:
        return self.kind in ("load_full", "load_lower")

    @property
    def is_store(self) -> bool:
        return self.kind in ("store_full", "store_lower")


@dataclass
class ScheduleCounts:
    """Aggregate statistics of a schedule (per matrix / per thread)."""

    loads: int = 0  # elements loaded
    stores: int = 0  # elements stored
    load_ops: int = 0  # tile-granularity load operations
    store_ops: int = 0
    compute_ops: int = 0
    mix: OpMixCounter = field(default_factory=OpMixCounter)

    @property
    def flops(self) -> int:
        return self.mix.flops


def build_schedule(config) -> list[TileOp]:
    """The flat tile-op schedule of one thread under ``config``.

    Identical for partial and full unrolling — unrolling changes the static
    code, not the dynamic operation sequence.  (What full unrolling *does*
    change is the compiler's ability to keep tiles register-resident across
    operations; that is modelled downstream by
    :mod:`repro.gpusim.registers`.)
    """
    from repro.codegen.kernel import KernelBuilder  # deferred: avoids cycle

    return KernelBuilder(config).build_trace()


def schedule_counts(ops: list[TileOp]) -> ScheduleCounts:
    """Aggregate element and operation counts of a schedule."""
    counts = ScheduleCounts()
    for op in ops:
        if op.is_load:
            counts.loads += op.elems
            counts.load_ops += 1
        elif op.is_store:
            counts.stores += op.elems
            counts.store_ops += 1
        else:
            counts.compute_ops += 1
            if op.ops is not None:
                counts.mix = counts.mix + op.ops
    return counts


def schedule_summary(config) -> str:
    """Human-readable breakdown of a configuration's tile-op schedule.

    One row per op kind with counts and element/flop volumes — the
    quickest way to see *why* the looking variants differ (compare the
    ``store_full``/``store_lower`` rows across right/left/top).
    """
    from collections import Counter

    from repro.utils.tables import format_table

    ops = build_schedule(config)
    by_kind: Counter = Counter()
    elems: Counter = Counter()
    flops: Counter = Counter()
    for op in ops:
        by_kind[op.kind] += 1
        elems[op.kind] += op.elems
        flops[op.kind] += op.ops.flops if op.ops is not None else 0
    order = [
        "load_full", "load_lower", "store_full", "store_lower",
        "potrf", "trsm", "syrk", "gemm",
    ]
    rows = [
        [kind, by_kind[kind], elems[kind] or "-", flops[kind] or "-"]
        for kind in order
        if by_kind[kind]
    ]
    counts = schedule_counts(ops)
    rows.append(["TOTAL", len(ops), counts.loads + counts.stores, counts.flops])
    header = config.describe()
    table = format_table(["op", "count", "elements", "flops"], rows)
    return f"{header}\n{table}"
