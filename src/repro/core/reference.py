"""Reference Cholesky implementations.

Three independent reference paths exist so that bugs cannot hide:

* :func:`cholesky_unblocked` — a literal transcription of Algorithm 1
  (unblocked, right-looking, lower-triangular) on a single matrix.
* :func:`batch_cholesky_reference` — the same algorithm vectorised over the
  batch dimension (loops over columns, NumPy over the batch).
* :func:`cholesky_blocked` — executes the *flat tile-operation schedule*
  from :func:`repro.core.schedule.build_schedule` with dense NumPy tile
  algebra, cross-checking the schedule semantics independently of the
  generated kernels.

All of them only read and write the lower triangle, leaving the strictly
upper part untouched, like the paper's kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import KernelConfig
from repro.core.schedule import build_schedule


def cholesky_unblocked(a: np.ndarray) -> np.ndarray:
    """Algorithm 1 on one matrix; returns a copy with L in the lower part.

    Raises ``np.linalg.LinAlgError`` when a non-positive pivot is met, the
    same failure LAPACK reports for a non-SPD input.
    """
    a = np.array(a, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    n = a.shape[0]
    for k in range(n):
        pivot = a[k, k]
        if not pivot > 0:
            raise np.linalg.LinAlgError(
                f"matrix is not positive definite: pivot {pivot} at column {k}"
            )
        a[k, k] = np.sqrt(pivot)
        for m in range(k + 1, n):
            a[m, k] = a[m, k] / a[k, k]
        for col in range(k + 1, n):
            for m in range(col, n):
                a[m, col] = a[m, col] - a[col, k] * a[m, k]
    return a


def batch_cholesky_reference(a: np.ndarray) -> np.ndarray:
    """Unblocked factorization vectorised over the batch dimension.

    ``a`` has shape ``(batch, n, n)``; the loop runs over columns while all
    matrices advance in lockstep — the same SIMT structure as the GPU
    kernels, which makes this the bit-closest CPU reference for them.
    """
    a = np.array(a, copy=True)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (batch, n, n) array, got shape {a.shape}")
    n = a.shape[1]
    for k in range(n):
        pivots = a[:, k, k]
        if not np.all(pivots > 0):
            bad = int(np.argmin(pivots > 0))
            raise np.linalg.LinAlgError(
                f"matrix {bad} is not positive definite at column {k}"
            )
        a[:, k, k] = np.sqrt(pivots)
        a[:, k + 1 :, k] /= a[:, k, k, None]
        # Rank-1 update of the lower triangle of the trailing submatrix.
        outer = a[:, k + 1 :, k][:, :, None] * a[:, k + 1 :, k][:, None, :]
        tril = np.tril(np.ones((n - k - 1, n - k - 1), dtype=bool))
        sub = a[:, k + 1 :, k + 1 :]
        sub[:, tril] -= outer[:, tril]
    return a


def _potrf_tile(tile: np.ndarray) -> None:
    """In-place unblocked factorization of a register tile (lower)."""
    kb = tile.shape[0]
    for k in range(kb):
        tile[k, k] = np.sqrt(tile[k, k])
        inv = 1.0 / tile[k, k]
        tile[k + 1 :, k] *= inv
        for col in range(k + 1, kb):
            tile[col:, col] -= tile[col, k] * tile[col:, k]


def _trsm_tile(diag: np.ndarray, targ: np.ndarray) -> None:
    """In-place solve ``targ <- targ * diag^{-T}`` (diag lower-triangular)."""
    kb = diag.shape[0]
    for k in range(kb):
        targ[:, k] /= diag[k, k]
        for col in range(k + 1, kb):
            targ[:, col] -= targ[:, k] * diag[col, k]


def cholesky_blocked(a: np.ndarray, config: KernelConfig) -> np.ndarray:
    """Execute the tile schedule of ``config`` on one dense matrix.

    This is the schedule's executable specification: every
    :class:`~repro.core.schedule.TileOp` is interpreted with dense NumPy
    tile algebra.  Used by tests to verify that all three looking variants
    (with corner tiles) compute the same factorization.
    """
    a = np.array(a, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    if a.shape[0] != config.n:
        raise ValueError(f"matrix is {a.shape[0]}x{a.shape[0]} but config.n={config.n}")
    nb = config.effective_nb
    # Register contents are reconstructed from tile coordinates (TileOps do
    # not carry register names): each load binds its tile's coordinates and
    # each compute op looks its operands up by coordinates.
    by_coord: dict[tuple[int, int], np.ndarray] = {}

    def _slices(t: tuple[int, int], shape_rows: int, shape_cols: int):
        r0 = t[0] * nb
        c0 = t[1] * nb
        return slice(r0, r0 + shape_rows), slice(c0, c0 + shape_cols)

    for op in build_schedule(config):
        if op.kind == "load_full":
            mb, nbc = op.shape
            rs, cs = _slices(op.target, mb, nbc)
            by_coord[op.target] = a[rs, cs].copy()
        elif op.kind == "load_lower":
            kb = op.shape[0]
            rs, cs = _slices(op.target, kb, kb)
            by_coord[op.target] = np.tril(a[rs, cs])
        elif op.kind == "store_full":
            mb, nbc = op.shape
            rs, cs = _slices(op.target, mb, nbc)
            a[rs, cs] = by_coord[op.target]
        elif op.kind == "store_lower":
            kb = op.shape[0]
            rs, cs = _slices(op.target, kb, kb)
            lower = np.tril_indices(kb)
            block = a[rs, cs]  # basic slicing: a view, writes go through
            block[lower] = by_coord[op.target][lower]
        elif op.kind == "potrf":
            _potrf_tile(by_coord[op.target])
        elif op.kind == "trsm":
            _trsm_tile(by_coord[op.operands[0]], by_coord[op.target])
        elif op.kind == "syrk":
            panel = by_coord[op.operands[0]]
            diag = by_coord[op.target]
            update = panel @ panel.T
            mb = diag.shape[0]
            tril = np.tril_indices(mb)
            diag[tril] -= update[tril]
        elif op.kind == "gemm":
            a1 = by_coord[op.operands[0]]
            a2 = by_coord[op.operands[1]]
            by_coord[op.target] -= a1 @ a2.T
        else:  # pragma: no cover - TileOp validates kinds
            raise ValueError(f"unknown op kind {op.kind!r}")
    return a
