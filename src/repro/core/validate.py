"""Post-factorization validation.

The generated kernels are branch-free straight-line code — exactly like
the CUDA originals, they cannot raise on a non-SPD input; a negative
pivot silently turns into a NaN square root that propagates.  These
helpers give callers the LAPACK-style ``info`` diagnosis after the fact:
which matrices failed, and where.
"""

from __future__ import annotations

import numpy as np


def factorization_info(l: np.ndarray) -> np.ndarray:
    """LAPACK-``potrf``-style info for each factor in a dense batch.

    Returns an int array of shape ``(batch,)``: 0 when the lower triangle
    of the factor is finite with a strictly positive diagonal, otherwise
    ``i + 1`` for the first offending column ``i`` (non-finite or
    non-positive diagonal entry, or non-finite column below it) —
    mirroring LAPACK's 1-based failing-pivot convention.
    """
    l = np.asarray(l)
    if l.ndim != 3 or l.shape[1] != l.shape[2]:
        raise ValueError(f"expected factors of shape (batch, n, n), got {l.shape}")
    batch, n, _ = l.shape
    info = np.zeros(batch, dtype=np.int64)
    diag = np.einsum("bii->bi", l.astype(np.float64))
    rows, cols = np.tril_indices(n)
    lower = l[:, rows, cols].astype(np.float64)

    bad_diag = ~np.isfinite(diag) | (diag <= 0)
    bad_lower = ~np.isfinite(lower)
    for b in range(batch):
        first = n
        if bad_diag[b].any():
            first = int(np.argmax(bad_diag[b]))
        if bad_lower[b].any():
            first = min(first, int(cols[np.argmax(bad_lower[b])]))
        if first < n:
            info[b] = first + 1
    return info


def assert_factorization_ok(l: np.ndarray) -> None:
    """Raise ``numpy.linalg.LinAlgError`` if any factor in the batch failed."""
    info = factorization_info(l)
    bad = np.nonzero(info)[0]
    if bad.size:
        first = int(bad[0])
        raise np.linalg.LinAlgError(
            f"{bad.size} of {len(info)} factorizations failed; first failure: "
            f"matrix {first} at column {int(info[first]) - 1} "
            "(input not positive definite?)"
        )
