"""Kernel traces: the bridge between codegen and the GPU performance model.

A :class:`KernelTrace` bundles everything the model in
:mod:`repro.gpusim.model` needs to price one kernel: the dynamic tile-op
sequence of one thread, its aggregate memory/op counts, and the static
code size (the instruction-cache driver — this is where partial and full
unrolling genuinely differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import KernelConfig
from repro.core.schedule import ScheduleCounts, TileOp, build_schedule, schedule_counts


@dataclass(frozen=True)
class KernelTrace:
    """Per-thread execution trace plus static metadata of one kernel."""

    config: KernelConfig
    ops: tuple[TileOp, ...]
    counts: ScheduleCounts
    static_statements: int

    @property
    def load_elements(self) -> int:
        """Elements loaded per thread (before any register-residency pass)."""
        return self.counts.loads

    @property
    def store_elements(self) -> int:
        """Elements stored per thread (before any register-residency pass)."""
        return self.counts.stores

    @property
    def flops(self) -> int:
        """Exact flops per thread (2-per-FMA convention)."""
        return self.counts.flops


@lru_cache(maxsize=4096)
def _cached_trace(n: int, nb: int, looking: str, unroll: str) -> KernelTrace:
    # Deferred import: repro.codegen imports repro.core eagerly, so the
    # reverse edge must resolve at call time.
    from repro.codegen.kernel import generate_kernel_source

    config = KernelConfig(n=n, nb=nb, looking=looking, unroll=unroll)
    ops = tuple(build_schedule(config))
    counts = schedule_counts(list(ops))
    generated = generate_kernel_source(config)
    return KernelTrace(
        config=config,
        ops=ops,
        counts=counts,
        static_statements=generated.static_statements,
    )


def build_trace(config: KernelConfig) -> KernelTrace:
    """Build (or fetch from cache) the trace for one configuration.

    The trace depends only on ``(n, nb, looking, unroll)`` — the same key
    that identifies generated source — so sweeps over chunking, chunk size
    and arithmetic share traces.  Consequently ``trace.config`` is a
    *canonicalised* configuration carrying only those four fields; pass the
    full configuration alongside the trace where the other knobs matter
    (the performance model does).  Traces are also uplo-invariant: upper
    mode only transposes element addressing, not the operation stream.
    """
    return _cached_trace(*config.trace_key())
