"""Comparator implementations.

* :mod:`repro.baselines.lapack` — per-matrix ground truth via
  SciPy/LAPACK, used by tests as the numeric oracle.
* :mod:`repro.baselines.magma` — a model of the "traditional"
  implementation the paper compares against (MAGMA 2.2.0's batched
  Cholesky): canonical layout, one thread block per matrix, the matrix
  staged through shared memory.  Provides both a numeric executor and a
  performance estimate through the same P100 model, so Figures 13/14 can
  put both codes on one axis.
"""

from repro.baselines.lapack import lapack_cholesky_batch, lapack_solve_batch
from repro.baselines.magma import magma_cholesky_batch, estimate_magma_performance

__all__ = [
    "lapack_cholesky_batch",
    "lapack_solve_batch",
    "magma_cholesky_batch",
    "estimate_magma_performance",
]
