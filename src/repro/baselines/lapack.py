"""Per-matrix LAPACK ground truth (via SciPy).

The numeric oracle for every test in the suite: whatever a generated
kernel computes must match what LAPACK computes, matrix by matrix, to
single-precision accuracy.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla


def lapack_cholesky_batch(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of every matrix in a dense batch.

    Runs LAPACK's ``potrf`` matrix by matrix (no batching — this is the
    reference, not a competitor) and returns factors with zeroed strictly
    upper parts.
    """
    a = np.asarray(a)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (batch, n, n) array, got {a.shape}")
    out = np.empty_like(a)
    for b in range(a.shape[0]):
        out[b] = sla.cholesky(a[b], lower=True, check_finite=False)
    return out


def lapack_solve_batch(a: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A_b x_b = rhs_b`` per matrix with LAPACK's SPD solver."""
    a = np.asarray(a)
    rhs = np.asarray(rhs)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (batch, n, n) array, got {a.shape}")
    squeeze = rhs.ndim == 2
    if squeeze:
        rhs = rhs[:, :, None]
    out = np.empty_like(rhs, dtype=np.result_type(a.dtype, rhs.dtype))
    for b in range(a.shape[0]):
        c, low = sla.cho_factor(a[b], lower=True, check_finite=False)
        out[b] = sla.cho_solve((c, low), rhs[b], check_finite=False)
    return out[:, :, 0] if squeeze else out
