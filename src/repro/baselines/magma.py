"""Model of the traditional batched Cholesky (MAGMA 2.2.0 style).

The paper's Figures 13/14 compare the interleaved kernels against "the
traditional implementation in MAGMA": canonical layout, one thread block
per matrix, the matrix staged through shared memory, a column loop with
block-wide synchronisation.  Its performance characteristics — the reasons
the interleaved code wins small and loses big — are:

* **Sub-warp coalescing.**  A column of an ``n``-by-``n`` canonical matrix
  is ``4n`` contiguous bytes; for ``n < 32`` a warp's read uses only part
  of every 128-byte transaction, wasting bandwidth by ``128 / 4n``.
* **Idle lanes.**  With one thread per row, ``ceil32(n) - n`` lanes of
  every warp do nothing; for n = 8 that is 75 % of the machine.
* **Synchronisation.**  Every factorization step ends in block-wide
  barriers; tiny matrices are barrier-dominated.
* **Shared-memory reuse.**  But the matrix is loaded once and factored in
  shared memory, so DRAM traffic stays at ``~1.5 n^2`` elements per matrix
  regardless of n — while the interleaved kernels' register-only reuse
  makes their traffic grow as ``n^3 / nb``.  This is why "the performance
  of the interleaved implementation levels off, and is surpassed by the
  traditional implementation in MAGMA, for larger sizes" (Section III).

The numeric path simply factorizes the dense batch with the vectorised
reference (same arithmetic, canonical layout).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reference import batch_cholesky_reference
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.pipeline import issue_efficiency
from repro.utils.flops import cholesky_flops

#: Shared memory per SM on the modelled parts (64 KiB usable on the P100).
SHARED_PER_SM = 64 * 1024
#: Issue slots per block-wide __syncthreads(); the barrier's *latency* is
#: hidden by the other blocks resident on the SM.
SYNC_CYCLES = 8.0
#: Registers per thread of the staging kernel (column buffers + indices).
MAGMA_REGS_PER_THREAD = 64
#: Fraction of the serial pivot sequence (sqrt + reciprocal on a single
#: thread) that consumes issue slots; the rest is latency overlapped with
#: the SM's other resident blocks.
SERIAL_OVERLAP = 1.0 / 3.0
#: Fixed per-block issue cost: block scheduling, the batched API's
#: pointer-array indirection, bounds setup, prologue/epilogue.  With one
#: block per matrix this is the dominant cost for tiny matrices — one of
#: the two reasons (with coalescing) the interleaved kernels win there.
BLOCK_OVERHEAD_CYCLES = 300.0


@dataclass(frozen=True)
class MagmaEstimate:
    """Modelled execution of the traditional batched kernel."""

    n: int
    batch: int
    seconds: float
    gflops: float
    mem_seconds: float
    compute_seconds: float
    coalescing: float
    lane_utilization: float

    @property
    def bound(self) -> str:
        return "memory" if self.mem_seconds >= self.compute_seconds else "compute"


def magma_cholesky_batch(a: np.ndarray) -> np.ndarray:
    """Numeric path of the baseline: canonical-layout batch factorization."""
    a32 = np.ascontiguousarray(np.asarray(a), dtype=np.float32)
    return batch_cholesky_reference(a32)


def _coalescing_multiplier(n: int, arch: GPUArchitecture) -> float:
    """Bytes moved over bytes used for column-wise canonical reads."""
    column_bytes = 4 * n
    lines = -(-column_bytes // arch.line_bytes)
    return lines * arch.line_bytes / column_bytes


def estimate_magma_performance(
    n: int,
    batch: int = 16384,
    fast_math: bool = False,
    arch: GPUArchitecture = P100,
) -> MagmaEstimate:
    """Model the traditional one-block-per-matrix batched Cholesky."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")

    block_threads = -(-n // arch.warp_size) * arch.warp_size
    lane_util = n / block_threads
    warps_per_block = block_threads // arch.warp_size

    # --- occupancy: registers AND shared memory bound blocks/SM ----------
    occ = compute_occupancy(arch, MAGMA_REGS_PER_THREAD, block_threads, batch)
    shared_per_block = n * n * 4
    by_shared = max(1, SHARED_PER_SM // max(shared_per_block, 1))
    blocks_per_sm = min(occ.blocks_per_sm, by_shared)
    active_sms = min(arch.sms, batch)
    warps_per_sm = min(
        float(blocks_per_sm * warps_per_block),
        -(-batch // active_sms) * warps_per_block,
    )

    # --- memory: one staging pass in, lower triangle out ------------------
    coal = _coalescing_multiplier(n, arch)
    elements = n * n + n * (n + 1) // 2
    weighted = n * n + arch.write_cost_factor * (n * (n + 1) // 2)
    bytes_total = weighted * 4 * coal * batch
    peak_bw = arch.dram_bandwidth_gbs * 1e9
    in_flight = (
        warps_per_sm * active_sms * arch.warp_size * arch.mlp_per_thread * 4
    )
    achievable_bw = max(1.0, min(peak_bw, in_flight / arch.mem_latency_s))
    mem_seconds = bytes_total / achievable_bw

    # --- compute: column loop in shared memory ----------------------------
    # Per step k: a serial sqrt + reciprocal, a column scale, and a rank-1
    # update of (n-k-1)^2 elements spread over the block's threads, plus
    # two barriers.  Work is counted in warp-instructions over the block.
    warp_instructions = 0.0
    div = arch.div_cycles(fast_math)
    sqrt = arch.sqrt_cycles(fast_math)
    for k in range(n):
        rem = n - k - 1
        # Serial pivot on one thread: mostly latency, partly issue.
        warp_instructions += (sqrt + div) * SERIAL_OVERLAP
        warp_instructions += -(-rem // block_threads) or 0  # column scale
        # Rank-1 update: rem^2 lane-FMAs spread over the block's lanes.
        warp_instructions += rem * rem / block_threads
        warp_instructions += 2 * SYNC_CYCLES
    # Staging in/out also issues load/store instructions.
    warp_instructions += 2.0 * elements / block_threads
    warp_instructions += BLOCK_OVERHEAD_CYCLES / warps_per_block

    eff = issue_efficiency(warps_per_sm, arch)
    warp_issue_rate = arch.issue_rate_per_sm / arch.warp_size
    clock_hz = arch.clock_ghz * 1e9
    # Each SM processes batch/active_sms blocks; each block issues
    # warp_instructions per warp, and the SM retires warp-instructions at
    # warp_issue_rate * eff per cycle.
    blocks_per_sm_total = -(-batch // active_sms)
    compute_seconds = (
        warp_instructions
        * warps_per_block
        * blocks_per_sm_total
        / (warp_issue_rate * clock_hz * eff)
    )

    seconds = max(mem_seconds, compute_seconds) + arch.launch_overhead_s
    gflops = cholesky_flops(n) * batch / seconds / 1e9
    return MagmaEstimate(
        n=n,
        batch=batch,
        seconds=seconds,
        gflops=gflops,
        mem_seconds=mem_seconds,
        compute_seconds=compute_seconds,
        coalescing=coal,
        lane_utilization=lane_util,
    )
