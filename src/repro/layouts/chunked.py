"""Chunked interleaved batch layout (Figure 8 of the paper).

Matrices are grouped in chunks of ``chunk_size`` (a multiple of the warp
size).  Each chunk occupies a contiguous region of memory and is internally
interleaved, so all warp reads remain perfectly coalesced while the elements
of one matrix stay within ``chunk_size * n * n`` elements of each other —
restoring the spatial locality that the simple interleaved layout destroys.

In the paper's kernels, ``chunk_size`` doubles as the thread-block size:
one thread block factorizes one chunk.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import (
    WARP_SIZE,
    BatchSpec,
    Layout,
    register_layout,
    _pad_dense_with_identity,
)

#: Chunk sizes the paper's autotuner explores (Section II.D, Figure 18).
SUPPORTED_CHUNK_SIZES = (32, 64, 128, 256, 512)


class ChunkedInterleavedLayout(Layout):
    """Chunked interleave: offset = chunk_base + (j*n + i)*chunk + lane."""

    def __init__(self, chunk_size: int = WARP_SIZE) -> None:
        if chunk_size <= 0 or chunk_size % WARP_SIZE != 0:
            raise ValueError(
                f"chunk_size must be a positive multiple of {WARP_SIZE}, got {chunk_size}"
            )
        self.chunk_size = chunk_size
        self.name = f"chunked{chunk_size}"

    def padded_batch(self, spec: BatchSpec) -> int:
        """Batch rounded up to a whole number of chunks."""
        return -(-spec.batch // self.chunk_size) * self.chunk_size

    def num_chunks(self, spec: BatchSpec) -> int:
        return self.padded_batch(spec) // self.chunk_size

    def buffer_len(self, spec: BatchSpec) -> int:
        return self.padded_batch(spec) * spec.n * spec.n

    def element_offset(self, spec: BatchSpec, b, i, j):
        b = np.asarray(b)
        i = np.asarray(i)
        j = np.asarray(j)
        cs = self.chunk_size
        chunk, lane = b // cs, b % cs
        per_chunk = spec.n * spec.n * cs
        return chunk * per_chunk + (j * spec.n + i) * cs + lane

    def pack(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense)
        if dense.ndim != 3 or dense.shape[1] != dense.shape[2]:
            raise ValueError(f"expected (batch, n, n) array, got {dense.shape}")
        batch, n, _ = dense.shape
        spec = BatchSpec(batch=batch, n=n, itemsize=dense.dtype.itemsize)
        pb = self.padded_batch(spec)
        padded = _pad_dense_with_identity(dense, pb)
        cs = self.chunk_size
        # (chunk, lane, i, j) -> (chunk, j, i, lane), flattened C order:
        # chunk major, then element-major batch-fastest within the chunk.
        chunks = padded.reshape(pb // cs, cs, n, n).transpose(0, 3, 2, 1)
        return np.ascontiguousarray(chunks).reshape(-1).copy()

    def unpack(self, buf: np.ndarray, spec: BatchSpec) -> np.ndarray:
        buf = np.asarray(buf)
        expected = self.buffer_len(spec)
        if buf.shape != (expected,):
            raise ValueError(f"expected buffer of shape ({expected},), got {buf.shape}")
        n, cs = spec.n, self.chunk_size
        nchunks = self.num_chunks(spec)
        dense = buf.reshape(nchunks, n, n, cs).transpose(0, 3, 2, 1)
        dense = dense.reshape(nchunks * cs, n, n)
        return np.ascontiguousarray(dense[: spec.batch])


for _cs in SUPPORTED_CHUNK_SIZES:
    register_layout(ChunkedInterleavedLayout(_cs))
