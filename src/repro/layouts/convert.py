"""Layout conversion helpers.

All conversions round-trip through the dense ``(batch, n, n)`` form, which
is both the simplest correct implementation and the one actually used on
the host side in batch libraries (the paper treats layout conversion as an
offline packing step, not part of the timed kernel).
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import WARP_SIZE, BatchSpec, Layout, get_layout


def pad_batch(dense: np.ndarray, multiple: int = WARP_SIZE) -> np.ndarray:
    """Pad a dense batch with identity matrices to a multiple of ``multiple``.

    The paper pads the dataset so the matrix count divides the interleave
    group ("This is trivial and we are not going to look into it any
    further"); identities keep the padding factorizable.
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    dense = np.asarray(dense)
    if dense.ndim != 3 or dense.shape[1] != dense.shape[2]:
        raise ValueError(f"expected (batch, n, n) array, got {dense.shape}")
    batch, n, _ = dense.shape
    padded = -(-batch // multiple) * multiple
    if padded == batch:
        return dense
    out = np.empty((padded, n, n), dtype=dense.dtype)
    out[:batch] = dense
    out[batch:] = np.eye(n, dtype=dense.dtype)
    return out


def to_canonical_dense(buf: np.ndarray, spec: BatchSpec, layout: Layout | str) -> np.ndarray:
    """Unpack any layout's buffer into the dense ``(batch, n, n)`` form."""
    if isinstance(layout, str):
        layout = get_layout(layout)
    return layout.unpack(buf, spec)


def from_canonical_dense(dense: np.ndarray, layout: Layout | str) -> np.ndarray:
    """Pack a dense ``(batch, n, n)`` array into the given layout's buffer."""
    if isinstance(layout, str):
        layout = get_layout(layout)
    return layout.pack(np.asarray(dense))


def convert(
    buf: np.ndarray, spec: BatchSpec, src: Layout | str, dst: Layout | str
) -> np.ndarray:
    """Re-pack a buffer from layout ``src`` to layout ``dst``."""
    dense = to_canonical_dense(buf, spec, src)
    return from_canonical_dense(dense, dst)
