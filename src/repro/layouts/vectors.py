"""Interleaved layouts for batches of right-hand-side vectors.

The solve kernels consume right-hand sides laid out with the same
interleaving principle as the matrices: all copies of vector element
``(i, r)`` across a chunk (or the whole padded batch) are contiguous, so
warp accesses coalesce perfectly.  Element id within a matrix's block is
``e = r*n + i`` for right-hand side ``r``.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import WARP_SIZE


def _check_dense(dense: np.ndarray) -> tuple[int, int, int]:
    dense = np.asarray(dense)
    if dense.ndim != 3:
        raise ValueError(f"expected (batch, n, nrhs) array, got shape {dense.shape}")
    return dense.shape


def padded_batch(batch: int, group: int) -> int:
    """Batch rounded up to a whole number of interleave groups."""
    if group <= 0 or group % WARP_SIZE:
        raise ValueError(f"group must be a positive multiple of {WARP_SIZE}, got {group}")
    return -(-batch // group) * group


def pack_vectors(dense: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
    """Flat interleaved buffer from a dense ``(batch, n, nrhs)`` array.

    ``chunk_size=None`` gives the simple interleave (batch fastest over
    the whole padded batch); an integer gives the chunked variant.
    Padding entries are zero-filled (solving a zero RHS is harmless).
    """
    dense = np.asarray(dense)
    batch, n, nrhs = _check_dense(dense)
    group = chunk_size if chunk_size is not None else WARP_SIZE
    pb = padded_batch(batch, group)
    if pb != batch:
        padded = np.zeros((pb, n, nrhs), dtype=dense.dtype)
        padded[:batch] = dense
        dense = padded
    if chunk_size is None:
        # dense[b, i, r] -> buf[(r*n + i)*pb + b]
        return np.ascontiguousarray(dense.transpose(2, 1, 0)).reshape(-1).copy()
    cs = chunk_size
    chunks = dense.reshape(pb // cs, cs, n, nrhs).transpose(0, 3, 2, 1)
    return np.ascontiguousarray(chunks).reshape(-1).copy()


def unpack_vectors(
    buf: np.ndarray, batch: int, n: int, nrhs: int, chunk_size: int | None = None
) -> np.ndarray:
    """Dense ``(batch, n, nrhs)`` array from an interleaved buffer."""
    buf = np.asarray(buf)
    group = chunk_size if chunk_size is not None else WARP_SIZE
    pb = padded_batch(batch, group)
    expected = pb * n * nrhs
    if buf.shape != (expected,):
        raise ValueError(f"expected buffer of shape ({expected},), got {buf.shape}")
    if chunk_size is None:
        dense = buf.reshape(nrhs, n, pb).transpose(2, 1, 0)
    else:
        cs = chunk_size
        dense = buf.reshape(pb // cs, nrhs, n, cs).transpose(0, 3, 2, 1)
        dense = dense.reshape(pb, n, nrhs)
    return np.ascontiguousarray(dense[:batch])


def vector_lane_view(
    buf: np.ndarray, batch: int, n: int, nrhs: int, chunk_size: int | None = None
) -> np.ndarray:
    """Element-indexable view: ``view[e]`` = lanes of element ``e = r*n+i``."""
    group = chunk_size if chunk_size is not None else WARP_SIZE
    pb = padded_batch(batch, group)
    if chunk_size is None:
        return buf.reshape(n * nrhs, pb)
    nchunks = pb // chunk_size
    view = buf.reshape(nchunks, n * nrhs, chunk_size)
    return np.moveaxis(view, 1, 0)
