"""Warp-level address-pattern generation.

In every kernel in the paper one GPU thread owns one matrix, so warp ``w``
covers matrices ``32*w .. 32*w + 31`` and a single load of element
``(i, j)`` issues 32 addresses — one per lane.  These helpers turn that
access into concrete byte addresses for a given layout, which is what the
coalescing model in :mod:`repro.gpusim.coalescing` consumes.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import WARP_SIZE, BatchSpec, Layout

#: Bytes per memory transaction (one L2/DRAM cache line, Section I.D).
CACHE_LINE_BYTES = 128


def warp_lanes(warp_index: int) -> np.ndarray:
    """Global thread (= matrix) indices covered by one warp."""
    if warp_index < 0:
        raise ValueError(f"warp_index must be nonnegative, got {warp_index}")
    base = warp_index * WARP_SIZE
    return np.arange(base, base + WARP_SIZE)


def warp_byte_addresses(
    layout: Layout, spec: BatchSpec, warp_index: int, i: int, j: int
) -> np.ndarray:
    """Byte addresses issued by one warp loading element ``(i, j)``.

    Lanes whose matrix index falls beyond the padded batch are masked out
    (they would be inactive threads); the returned array only contains
    active lanes' addresses.
    """
    if not (0 <= i < spec.n and 0 <= j < spec.n):
        raise ValueError(f"element ({i}, {j}) out of range for n={spec.n}")
    lanes = warp_lanes(warp_index)
    lanes = lanes[lanes < spec.padded_batch]
    if lanes.size == 0:
        raise ValueError(
            f"warp {warp_index} is entirely outside the padded batch "
            f"({spec.padded_batch} matrices)"
        )
    return np.asarray(layout.byte_address(spec, lanes, i, j), dtype=np.int64)


def transactions_for_addresses(addresses: np.ndarray, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Number of ``line_bytes``-sized memory transactions the warp needs.

    This is the coalescing rule from Section I.D: addresses falling in the
    same 128-byte line are served by one transaction; each additional line
    costs another transaction.
    """
    if line_bytes <= 0:
        raise ValueError(f"line_bytes must be positive, got {line_bytes}")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    return int(np.unique(addresses // line_bytes).size)


def warp_transactions(
    layout: Layout, spec: BatchSpec, warp_index: int, i: int, j: int
) -> int:
    """Transactions needed by one warp to load element ``(i, j)``."""
    return transactions_for_addresses(warp_byte_addresses(layout, spec, warp_index, i, j))


def matrix_element_stride_bytes(layout: Layout, spec: BatchSpec) -> int:
    """Distance in bytes between elements (i, j) and (i+1, j) of one matrix.

    This is the stride that drives DRAM row-buffer locality: 4 bytes for the
    canonical layout, ``4 * padded_batch`` for the simple interleave, and
    ``4 * chunk_size`` for chunked interleaves.
    """
    if spec.n < 2:
        # Degenerate 1x1 matrices have no second element; the interleave
        # stride is still well defined through the offset formula with j.
        a = layout.byte_address(spec, 0, 0, 0)
        return int(np.asarray(a).item() + spec.itemsize)
    a0 = int(np.asarray(layout.byte_address(spec, 0, 0, 0)).item())
    a1 = int(np.asarray(layout.byte_address(spec, 0, 1, 0)).item())
    return abs(a1 - a0)
