"""Canonical batch layout: contiguous column-major matrices, back to back.

This is the layout used by cuBLAS/MAGMA-style batched routines and the
baseline the paper compares against.  Element ``(i, j)`` of matrix ``b``
lives at offset ``b*n*n + j*n + i`` (column major within each matrix).
No warp-level interleaving exists, so for matrices smaller than the warp a
warp's loads touch many cache lines (see :mod:`repro.gpusim.coalescing`).
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import BatchSpec, Layout, register_layout


class CanonicalLayout(Layout):
    """Traditional column-major-per-matrix batch layout."""

    name = "canonical"

    def buffer_len(self, spec: BatchSpec) -> int:
        # Canonical batches need no warp padding; each matrix is independent.
        return spec.batch * spec.n * spec.n

    def element_offset(self, spec: BatchSpec, b, i, j):
        b = np.asarray(b)
        i = np.asarray(i)
        j = np.asarray(j)
        return b * (spec.n * spec.n) + j * spec.n + i

    def pack(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense)
        if dense.ndim != 3 or dense.shape[1] != dense.shape[2]:
            raise ValueError(f"expected (batch, n, n) array, got {dense.shape}")
        # dense[b, i, j] -> buf[b*n*n + j*n + i]: transpose each matrix so the
        # row index is fastest, then flatten in C order.
        return np.ascontiguousarray(dense.transpose(0, 2, 1)).reshape(-1).copy()

    def unpack(self, buf: np.ndarray, spec: BatchSpec) -> np.ndarray:
        buf = np.asarray(buf)
        expected = self.buffer_len(spec)
        if buf.shape != (expected,):
            raise ValueError(f"expected buffer of shape ({expected},), got {buf.shape}")
        return np.ascontiguousarray(
            buf.reshape(spec.batch, spec.n, spec.n).transpose(0, 2, 1)
        )


CANONICAL = register_layout(CanonicalLayout())
