"""Layout abstraction shared by the executors and the GPU model.

A *layout* defines a bijection between matrix elements ``(b, i, j)`` of a
batch and offsets into a flat 1-D buffer.  Executors use :meth:`Layout.pack`
and :meth:`Layout.unpack` to move data in and out; the coalescing model in
:mod:`repro.gpusim.coalescing` uses :meth:`Layout.element_offset` to turn a
warp's accesses into byte addresses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

#: Number of threads in a warp; also the minimum interleave group (the paper
#: pads the batch to a multiple of 32 and so do we).
WARP_SIZE = 32


@dataclass(frozen=True)
class BatchSpec:
    """Shape description of a batch of square matrices.

    Attributes
    ----------
    batch:
        Number of matrices actually carried (before any padding).
    n:
        Matrix dimension.
    itemsize:
        Bytes per element; 4 for the paper's single-precision setting.
    """

    batch: int
    n: int
    itemsize: int = 4

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.itemsize not in (2, 4, 8):
            raise ValueError(f"unsupported itemsize {self.itemsize}")

    @property
    def padded_batch(self) -> int:
        """Batch size rounded up to a full warp (the paper's padding rule)."""
        return -(-self.batch // WARP_SIZE) * WARP_SIZE

    @property
    def elements_per_matrix(self) -> int:
        return self.n * self.n


class Layout(ABC):
    """A batch memory layout.

    Concrete layouts are stateless except for structural parameters (e.g.
    chunk size), so instances are cheap and hashable by their :attr:`name`.
    """

    #: short identifier, e.g. ``"canonical"``; set by subclasses
    name: str = ""

    @abstractmethod
    def buffer_len(self, spec: BatchSpec) -> int:
        """Number of elements in the flat buffer (including padding)."""

    @abstractmethod
    def element_offset(self, spec: BatchSpec, b, i, j):
        """Flat element offset(s) of element ``(i, j)`` of matrix ``b``.

        Accepts scalars or broadcastable integer arrays and is fully
        vectorised; the returned offsets index the buffer produced by
        :meth:`pack`.
        """

    @abstractmethod
    def pack(self, dense: np.ndarray) -> np.ndarray:
        """Flat buffer from a dense ``(batch, n, n)`` array.

        Padding entries (when ``batch`` is not a multiple of the interleave
        group) are filled with identity matrices so that factorization of the
        padding is well defined and harmless.
        """

    @abstractmethod
    def unpack(self, buf: np.ndarray, spec: BatchSpec) -> np.ndarray:
        """Dense ``(batch, n, n)`` array from a flat buffer (drops padding)."""

    def byte_address(self, spec: BatchSpec, b, i, j):
        """Byte address(es) assuming the buffer starts 128-byte aligned."""
        return self.element_offset(spec, b, i, j) * spec.itemsize

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Layout) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


_REGISTRY: dict[str, Layout] = {}


def register_layout(layout: Layout) -> Layout:
    """Register a layout instance for lookup via :func:`get_layout`."""
    if not layout.name:
        raise ValueError("layout must define a non-empty name")
    _REGISTRY[layout.name] = layout
    return layout


def get_layout(name: str) -> Layout:
    """Look up a registered layout by name (e.g. ``"interleaved"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown layout {name!r}; known layouts: {known}") from None


def _pad_dense_with_identity(dense: np.ndarray, padded_batch: int) -> np.ndarray:
    """Extend a dense batch to ``padded_batch`` matrices with identities."""
    batch, n, _ = dense.shape
    if padded_batch == batch:
        return dense
    out = np.empty((padded_batch, n, n), dtype=dense.dtype)
    out[:batch] = dense
    out[batch:] = np.eye(n, dtype=dense.dtype)
    return out
