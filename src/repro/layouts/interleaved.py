"""Simple interleaved batch layout (Figure 7 of the paper).

The batch index is the fastest-growing dimension: all copies of element
``(i, j)`` across the (padded) batch are contiguous.  With the buffer
128-byte aligned and the batch padded to a multiple of 32, every warp access
is one perfectly coalesced transaction, regardless of the matrix dimension.

The downside the paper investigates: consecutive elements of a *single*
matrix are ``padded_batch`` elements apart (64 KiB at batch 16384 in single
precision), destroying spatial locality at the DRAM row-buffer level —
which is exactly what the chunked variant fixes.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import (
    BatchSpec,
    Layout,
    register_layout,
    _pad_dense_with_identity,
)


class InterleavedLayout(Layout):
    """Fully interleaved layout: offset = (j*n + i) * padded_batch + b."""

    name = "interleaved"

    def buffer_len(self, spec: BatchSpec) -> int:
        return spec.padded_batch * spec.n * spec.n

    def element_offset(self, spec: BatchSpec, b, i, j):
        b = np.asarray(b)
        i = np.asarray(i)
        j = np.asarray(j)
        return (j * spec.n + i) * spec.padded_batch + b

    def pack(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense)
        if dense.ndim != 3 or dense.shape[1] != dense.shape[2]:
            raise ValueError(f"expected (batch, n, n) array, got {dense.shape}")
        batch, n, _ = dense.shape
        spec = BatchSpec(batch=batch, n=n, itemsize=dense.dtype.itemsize)
        padded = _pad_dense_with_identity(dense, spec.padded_batch)
        # padded[b, i, j] -> buf[(j*n + i)*B + b]; axes (j, i, b) flattened in
        # C order give exactly that element-major, batch-fastest ordering.
        return np.ascontiguousarray(padded.transpose(2, 1, 0)).reshape(-1).copy()

    def unpack(self, buf: np.ndarray, spec: BatchSpec) -> np.ndarray:
        buf = np.asarray(buf)
        expected = self.buffer_len(spec)
        if buf.shape != (expected,):
            raise ValueError(f"expected buffer of shape ({expected},), got {buf.shape}")
        n, pb = spec.n, spec.padded_batch
        dense = buf.reshape(n, n, pb).transpose(2, 1, 0)
        return np.ascontiguousarray(dense[: spec.batch])


INTERLEAVED = register_layout(InterleavedLayout())
