"""Batch data layouts (Section II.B of the paper).

Three layouts are implemented:

* :class:`~repro.layouts.canonical.CanonicalLayout` — the traditional batch
  layout: each matrix is a contiguous column-major block, matrices stored
  one after another.  Coalescing degrades as matrices shrink and is
  impossible below n = 32 in single precision.
* :class:`~repro.layouts.interleaved.InterleavedLayout` — the simple
  interleaved layout (Figure 7): the batch index is the fastest-growing
  dimension, so one warp reads element (i, j) of 32 consecutive matrices in
  a single 128-byte transaction.
* :class:`~repro.layouts.chunked.ChunkedInterleavedLayout` — the chunked
  interleaved layout (Figure 8): matrices are grouped in chunks of 32 (or a
  larger multiple of 32); each chunk is a contiguous interleaved block, so
  reads stay coalesced *and* the elements of one matrix stay close together
  in memory.
"""

from repro.layouts.base import BatchSpec, Layout, get_layout, register_layout
from repro.layouts.canonical import CanonicalLayout
from repro.layouts.interleaved import InterleavedLayout
from repro.layouts.chunked import ChunkedInterleavedLayout
from repro.layouts.convert import (
    pad_batch,
    convert,
    to_canonical_dense,
    from_canonical_dense,
)
from repro.layouts.addressing import (
    CACHE_LINE_BYTES,
    warp_byte_addresses,
    warp_transactions,
    transactions_for_addresses,
    matrix_element_stride_bytes,
)

__all__ = [
    "BatchSpec",
    "Layout",
    "get_layout",
    "register_layout",
    "CanonicalLayout",
    "InterleavedLayout",
    "ChunkedInterleavedLayout",
    "pad_batch",
    "convert",
    "to_canonical_dense",
    "from_canonical_dense",
    "CACHE_LINE_BYTES",
    "warp_byte_addresses",
    "warp_transactions",
    "transactions_for_addresses",
    "matrix_element_stride_bytes",
]
